"""Unit tests of the fault-tolerance subsystem (repro.runtime.resilience).

The conformance suite (tests/test_runtime_conformance.py) proves all
four backends behave identically under one injected schedule; this file
drills into the machinery itself: direct worker kills without the chaos
wrapper, deadline-based hung-worker recovery, respawn, loss budgets, the
injector's determinism, the flaky/straggler kernels, the socket
backend's band-rows-only attach payloads, and the calibrate satellite's
outlier guard.
"""

from __future__ import annotations

import pickle
import time

import numpy as np
import pytest

from repro.core import make_weighting, multisplitting_iterate, uniform_bands
from repro.core.stopping import StoppingCriterion
from repro.direct import get_solver
from repro.linalg.sparse import as_csr
from repro.matrices import diagonally_dominant, rhs_for_solution
from repro.runtime import (
    ChaosExecutor,
    CrashOnceSolver,
    FaultInjector,
    FaultPolicy,
    FaultStats,
    FlakySolver,
    InlineExecutor,
    ProcessExecutor,
    SocketExecutor,
    StallOnceSolver,
    StragglerSolver,
    async_iterate,
)
from repro.runtime.resilience import InjectedFault
from repro.schedule import Placement, WorkerSlot, measure_worker_speeds

pytestmark = pytest.mark.filterwarnings(
    # A SIGKILLed worker cannot close its shared-memory handles; the
    # resource tracker's shutdown sweep reclaims them and warns.
    "ignore:resource_tracker:UserWarning"
)

_POLICY = FaultPolicy(heartbeat_interval=0.1)


def _problem(n=96, L=4, seed=5):
    A = diagonally_dominant(n, dominance=1.5, bandwidth=4, seed=seed)
    b, _ = rhs_for_solution(A, seed=seed + 1)
    part = uniform_bands(n, L).to_general()
    scheme = make_weighting("ownership", part)
    return A, b, part, scheme


def _reference(A, b, part, scheme, iters=6):
    stopping = StoppingCriterion(tolerance=1e-300, max_iterations=iters)
    return multisplitting_iterate(
        A, b, part, scheme, get_solver("scipy"), stopping=stopping
    )


def _serve_entry(port_q, crash_after):
    """Spawn target for external-fleet tests (module-level: picklable)."""
    from repro.runtime.sockets import serve_worker

    serve_worker(0, "127.0.0.1", on_bound=port_q.put, crash_after=crash_after)


class TestPolicyAndStats:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            FaultPolicy(deadline=0.0)
        with pytest.raises(ValueError):
            FaultPolicy(heartbeat_interval=-1.0)
        with pytest.raises(ValueError):
            FaultPolicy(max_worker_losses=-1)

    def test_stats_merge_and_snapshot(self):
        a = FaultStats(workers_lost=1, blocks_requeued=2, refactor_seconds=0.5)
        b = a.snapshot()
        b.merge_in(FaultStats(workers_lost=2, replies_dropped=3))
        assert (b.workers_lost, b.blocks_requeued, b.replies_dropped) == (3, 2, 3)
        assert a.workers_lost == 1  # snapshot is independent
        b.merge_in(None)  # tolerated, like CacheStats
        assert b.workers_lost == 3
        assert b.any_faults and not FaultStats().any_faults

    def test_injector_determinism_and_guards(self):
        inj = FaultInjector(seed=4, crash_rounds=(2,), drop_rate=0.5, max_crashes=1)
        seq1 = [inj.events_for(r, [0, 1, 2], [0, 1, 2, 3]) for r in range(1, 8)]
        inj.reset()
        seq2 = [inj.events_for(r, [0, 1, 2], [0, 1, 2, 3]) for r in range(1, 8)]
        assert seq1 == seq2
        assert inj.crashes_injected() == 1
        # Never schedules a crash against the last live worker.
        inj2 = FaultInjector(seed=0, crash_rounds=(1,))
        assert inj2.events_for(1, [0], [0, 1]) == []
        with pytest.raises(ValueError):
            FaultInjector(crash_rate=1.5)


class TestProcessRecovery:
    """Direct kills against ProcessExecutor, no chaos wrapper involved."""

    def test_requeue_after_direct_kill(self):
        A, b, part, scheme = _problem()
        ref = _reference(A, b, part, scheme)
        ex = ProcessExecutor(max_workers=2)
        try:
            ex.attach(A, b, part.sets, get_solver("scipy"), fault_policy=_POLICY)
            z = np.zeros(b.shape)
            first = ex.solve_round([z] * part.nprocs)
            assert ex.kill_worker(0)
            second = ex.solve_round([z] * part.nprocs)  # recovers mid-call
            for x, y in zip(first, second):
                np.testing.assert_array_equal(x, y)
            fault = ex.fault_stats()
            assert fault.workers_lost == 1
            assert fault.blocks_requeued == 2
            assert fault.refactor_seconds > 0.0
            assert ex.alive_workers() == [1]
        finally:
            ex.close()
        # The executor-driven run still matches the serial reference.
        ex2 = ProcessExecutor(max_workers=2)
        try:
            res = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"),
                stopping=StoppingCriterion(tolerance=1e-300, max_iterations=6),
                executor=ex2, fault_policy=_POLICY,
            )
            np.testing.assert_array_equal(res.x, ref.x)
        finally:
            ex2.close()

    def test_dead_worker_without_policy_still_raises(self):
        A, b, part, _ = _problem()
        ex = ProcessExecutor(max_workers=2)
        try:
            ex.attach(A, b, part.sets, get_solver("scipy"))
            ex.kill_worker(0)
            with pytest.raises(RuntimeError, match="died"):
                ex.solve_round([np.zeros(b.shape)] * part.nprocs)
        finally:
            ex.close()

    def test_reattach_revives_dead_ranks(self):
        """A fresh attach replaces corpses left by an earlier binding."""
        A, b, part, _ = _problem()
        ex = ProcessExecutor(max_workers=2)
        try:
            ex.attach(A, b, part.sets, get_solver("scipy"), fault_policy=_POLICY)
            ex.kill_worker(1)
            ex.detach()
            ex.attach(A, b, part.sets, get_solver("scipy"))
            pieces = ex.solve_round([np.zeros(b.shape)] * part.nprocs)
            assert len(pieces) == part.nprocs
        finally:
            ex.close()

    def test_max_worker_losses_budget(self):
        A, b, part, _ = _problem()
        ex = ProcessExecutor(max_workers=2)
        try:
            ex.attach(
                A, b, part.sets, get_solver("scipy"),
                fault_policy=FaultPolicy(
                    heartbeat_interval=0.1, max_worker_losses=0
                ),
            )
            ex.kill_worker(0)
            with pytest.raises(RuntimeError, match="fault policy exhausted"):
                ex.solve_round([np.zeros(b.shape)] * part.nprocs)
        finally:
            ex.close()

    def test_deadline_reaps_hung_worker(self):
        """A live-but-stalled worker breaches the deadline and is
        replaced; the round still completes with correct values."""
        A, b, part, scheme = _problem()
        ref = _reference(A, b, part, scheme, iters=2)
        # Only block 0's kernel straggles, and only on its second solve
        # (i.e. round 2 on its original owner): one worker hangs 30 s
        # mid-round while the other finishes normally.
        kernels = [
            StragglerSolver(get_solver("scipy"), seconds=30.0, slow_calls=(2,)),
            get_solver("scipy"),
            get_solver("scipy"),
            get_solver("scipy"),
        ]
        ex = ProcessExecutor(max_workers=2)
        try:
            t0 = time.monotonic()
            res = multisplitting_iterate(
                A, b, part, scheme, kernels,
                stopping=StoppingCriterion(tolerance=1e-300, max_iterations=2),
                executor=ex,
                fault_policy=FaultPolicy(heartbeat_interval=0.1, deadline=1.0),
            )
            elapsed = time.monotonic() - t0
            np.testing.assert_array_equal(res.x, ref.x)
            assert res.fault_stats.workers_lost >= 1
            assert elapsed < 25.0  # nowhere near the 30 s stall
        finally:
            ex.close()


class TestPerBlockDeadline:
    """The chatty-worker masking bug (found by the interleaving
    explorer's recovery model, fixed in this PR): the deadline sweep
    used to run only when a reply poll came back *empty*, so one worker
    streaming replies faster than the heartbeat postponed hung-peer
    detection until its own queue drained.  The fix keys each
    outstanding block to its worker's last proof of life (dispatch or
    that worker's latest reply), checked every iteration."""

    def test_chatty_worker_cannot_mask_hung_peer(self, tmp_path):
        import threading

        n, L = 84, 21
        A = diagonally_dominant(n, dominance=1.5, bandwidth=3, seed=7)
        b, _ = rhs_for_solution(A, seed=8)
        part = uniform_bands(n, L).to_general()
        # Block 0 alone on worker 0, hung far past the deadline; the 20
        # chatty blocks on worker 1 each reply every ~0.15 s -- faster
        # than the 0.2 s heartbeat, so the old code's reply polls never
        # came back empty (and its deadline check never ran) until the
        # chatty queue drained at ~3 s.
        plan = Placement(
            strategy="test",
            n=n,
            workers=(WorkerSlot(name="hung"), WorkerSlot(name="chatty")),
            sizes=(4,) * L,
            assignment=(0,) + (1,) * (L - 1),
        )
        kernels = [
            StallOnceSolver(
                get_solver("scipy"), tmp_path / "hang.sentinel", seconds=30.0
            )
        ] + [
            StragglerSolver(get_solver("scipy"), seconds=0.15, slow_calls=(1,))
            for _ in range(L - 1)
        ]
        ex = ProcessExecutor(max_workers=2)
        try:
            ex.attach(
                A, b, part.sets, kernels,
                placement=plan,
                fault_policy=FaultPolicy(heartbeat_interval=0.2, deadline=0.6),
            )
            z = np.zeros(b.shape)
            result: dict = {}

            def _round():
                result["pieces"] = ex.solve_round([z] * L)

            t = threading.Thread(target=_round, daemon=True)
            t0 = time.monotonic()
            t.start()
            # The regression observable: the hung worker must be
            # declared lost at ~deadline (0.6 s), well before the
            # chatty stream runs dry.  Pre-fix code stays at 0 here.
            detected_at = None
            while time.monotonic() - t0 < 2.0:
                if ex.fault_stats().workers_lost >= 1:
                    detected_at = time.monotonic() - t0
                    break
                time.sleep(0.05)
            t.join(timeout=60.0)
            assert not t.is_alive()
            assert detected_at is not None, (
                "hung worker not detected while its peer streamed replies"
            )
            # The chatty worker survived its deep-but-live queue: its
            # replies refreshed its own blocks' clocks, so only the
            # silent worker breached.
            assert ex.fault_stats().workers_lost == 1
            assert 1 in ex.alive_workers()
            # And the recovered round is still bit-identical.
            inline = InlineExecutor()
            inline.attach(A, b, part.sets, get_solver("scipy"))
            ref = inline.solve_round([z] * L)
            for x, y in zip(result["pieces"], ref):
                np.testing.assert_array_equal(x, y)
        finally:
            ex.close()


class TestSocketRecovery:
    def test_requeue_after_direct_kill(self):
        A, b, part, scheme = _problem()
        ex = SocketExecutor(workers=2)
        try:
            ex.attach(A, b, part.sets, get_solver("scipy"), fault_policy=_POLICY)
            z = np.zeros(b.shape)
            first = ex.solve_round([z] * part.nprocs)
            assert ex.kill_worker(1)
            second = ex.solve_round([z] * part.nprocs)
            for x, y in zip(first, second):
                np.testing.assert_array_equal(x, y)
            fault = ex.fault_stats()
            assert fault.workers_lost == 1
            assert fault.blocks_requeued == 2
            assert ex.alive_workers() == [0]
        finally:
            ex.close()

    def test_dead_worker_without_policy_still_raises(self):
        A, b, part, _ = _problem()
        ex = SocketExecutor(workers=2)
        try:
            ex.attach(A, b, part.sets, get_solver("scipy"))
            ex.kill_worker(0)
            with pytest.raises(RuntimeError, match="died"):
                ex.solve_round([np.zeros(b.shape)] * part.nprocs)
        finally:
            ex.close()

    def test_group_aware_requeue_with_placement(self):
        """Orphans re-derive their home from the plan: a same-site
        survivor is preferred over a less-loaded remote one."""
        A, b, part, scheme = _problem()
        plan = Placement(
            strategy="test",
            n=96,
            workers=(
                WorkerSlot(name="a0", group="siteA"),
                WorkerSlot(name="a1", group="siteA"),
                WorkerSlot(name="b0", group="siteB"),
            ),
            sizes=(24, 24, 24, 24),
            assignment=(0, 1, 2, 1),
        )
        ex = SocketExecutor(workers=3)
        try:
            ex.attach(
                A, b, part.sets, get_solver("scipy"),
                placement=plan, fault_policy=_POLICY,
            )
            z = np.zeros(b.shape)
            ex.solve_round([z] * part.nprocs)
            assert ex.kill_worker(0)  # siteA worker with block 0
            ex.solve_round([z] * part.nprocs)
            # Block 0 must land on the other siteA worker (rank 1, two
            # blocks already) rather than on siteB's *less loaded* rank
            # 2 -- co-location beats load in the re-derived assignment.
            assert ex._owner[0] == 1
        finally:
            ex.close()

    def test_external_fleet_crash_after_recovers(self):
        """A real remote-style fleet: one worker self-destructs after N
        solves (the --crash-after chaos knob) and the driver requeues
        onto the surviving external worker."""
        import multiprocessing as mp

        ctx = mp.get_context()
        port_q = ctx.Queue()
        flaky = ctx.Process(
            target=_serve_entry, args=(port_q, 3), daemon=True
        )
        solid = ctx.Process(
            target=_serve_entry, args=(port_q, None), daemon=True
        )
        flaky.start()
        solid.start()
        try:
            ports = sorted([port_q.get(timeout=20.0), port_q.get(timeout=20.0)])
            A, b, part, scheme = _problem()
            ref = _reference(A, b, part, scheme)
            ex = SocketExecutor(addresses=[("127.0.0.1", p) for p in ports])
            try:
                res = multisplitting_iterate(
                    A, b, part, scheme, get_solver("scipy"),
                    stopping=StoppingCriterion(tolerance=1e-300, max_iterations=6),
                    executor=ex, fault_policy=_POLICY,
                )
                np.testing.assert_array_equal(res.x, ref.x)
                assert res.fault_stats.workers_lost == 1
                assert res.fault_stats.blocks_requeued == 2
            finally:
                ex.close()
        finally:
            for proc in (flaky, solid):
                proc.kill()
                proc.join(timeout=10.0)


class TestBandRowShipping:
    """Satellite: attach ships only each worker's owned band rows."""

    def test_attach_payload_shrinks_w_fold(self):
        n, L = 600, 4
        A = diagonally_dominant(n, dominance=1.5, bandwidth=8, seed=3)
        b, _ = rhs_for_solution(A, seed=4)
        part = uniform_bands(n, L).to_general()
        full_bytes = len(pickle.dumps(as_csr(A), protocol=pickle.HIGHEST_PROTOCOL))
        ex = SocketExecutor(workers=L)
        try:
            ex.attach(A, b, part.sets, get_solver("scipy"))
            payloads = ex.attach_payload_bytes
            assert sorted(payloads) == list(range(L))
            total = sum(payloads.values())
            # The old scheme shipped the full matrix to every worker
            # (W * full_bytes); band rows bring the total down to about
            # one matrix worth across ALL workers.
            assert total < 1.5 * full_bytes
            assert max(payloads.values()) < 0.6 * full_bytes
            # And the solves are still correct.
            scheme = make_weighting("ownership", part)
            stopping = StoppingCriterion(tolerance=1e-300, max_iterations=4)
            res = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"),
                stopping=stopping, executor=ex,
            )
            ref = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"), stopping=stopping
            )
            np.testing.assert_array_equal(res.x, ref.x)
        finally:
            ex.close()

    def test_band_built_system_matches_full_build(self):
        from repro.core.local import build_local_system

        A, b, part, _ = _problem()
        csr = as_csr(A)
        rows = part.sets[1]
        ref = build_local_system(csr, b, rows, 1, get_solver("scipy"))
        alt = build_local_system(
            None, None, rows, 1, get_solver("scipy"),
            band=csr[rows, :], b_sub=b[rows],
        )
        z = np.linspace(0.0, 1.0, csr.shape[0])
        np.testing.assert_array_equal(ref.solve_with(z), alt.solve_with(z))
        np.testing.assert_array_equal(ref.b_sub, alt.b_sub)
        assert (ref.dep != alt.dep).nnz == 0


class TestProcessRowShipping:
    """Satellite: the process backend also ships only owned rows."""

    def test_attach_payload_shrinks_w_fold(self):
        n, L = 600, 4
        A = diagonally_dominant(n, dominance=1.5, bandwidth=8, seed=3)
        b, _ = rhs_for_solution(A, seed=4)
        part = uniform_bands(n, L).to_general()
        full_bytes = len(pickle.dumps(as_csr(A), protocol=pickle.HIGHEST_PROTOCOL))
        ex = ProcessExecutor(max_workers=L)
        try:
            ex.attach(A, b, part.sets, get_solver("scipy"))
            payloads = ex.attach_payload_bytes
            assert sorted(payloads) == list(range(L))
            total = sum(payloads.values())
            # The old scheme pickled the full matrix into every worker's
            # spec (W * full_bytes over the task queues); owned rows
            # bring the total down to about one matrix worth across ALL
            # workers -- the ROADMAP's W-fold cut, same as sockets.
            assert total < 1.5 * full_bytes
            assert max(payloads.values()) < 0.6 * full_bytes
            scheme = make_weighting("ownership", part)
            stopping = StoppingCriterion(tolerance=1e-300, max_iterations=4)
            res = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"),
                stopping=stopping, executor=ex,
            )
            ref = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"), stopping=stopping
            )
            np.testing.assert_array_equal(res.x, ref.x)
        finally:
            ex.close()

    def test_general_sets_ship_and_solve(self):
        """Arbitrary (interleaved) index sets ride the owned-rows path."""
        from repro.core.partition import interleaved_partition

        A, b, _, _ = _problem()
        part = interleaved_partition(A.shape[0], 4, chunk=4)
        scheme = make_weighting("ownership", part)
        stopping = StoppingCriterion(tolerance=1e-300, max_iterations=4)
        ref = multisplitting_iterate(
            A, b, part, scheme, get_solver("scipy"), stopping=stopping
        )
        ex = ProcessExecutor(max_workers=2)
        try:
            res = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"),
                stopping=stopping, executor=ex,
            )
        finally:
            ex.close()
        np.testing.assert_array_equal(res.x, ref.x)


class TestTransactionalAttach:
    """Satellite (ROADMAP item): a worker killed mid-attach is recovered.

    :class:`CrashOnceSolver` hard-exits exactly one worker process from
    inside its attach-phase factorization -- the previously uncovered
    window where recovery used to fail fast.  With a policy the binding
    must complete (respawn or re-home), the counters must record the
    loss, and the subsequent solve must be bit-identical to the
    fault-free reference.
    """

    def _run(self, ex, tmp_path, policy):
        A, b, part, scheme = _problem()
        solver = CrashOnceSolver(
            get_solver("scipy"), tmp_path / "attach-crash.sentinel"
        )
        stopping = StoppingCriterion(tolerance=1e-300, max_iterations=4)
        ref = multisplitting_iterate(
            A, b, part, scheme, get_solver("scipy"), stopping=stopping
        )
        try:
            # The driver's own attach carries the crash: the sentinel'd
            # kernel hard-exits one worker from inside its attach-phase
            # factorization, and recovery must complete the binding.
            res = multisplitting_iterate(
                A, b, part, scheme, solver,
                stopping=stopping, executor=ex, fault_policy=policy,
            )
        finally:
            ex.close()
        np.testing.assert_array_equal(res.x, ref.x)
        return res.fault_stats

    @pytest.mark.parametrize("respawn", [False, True])
    def test_process_attach_crash_recovers(self, tmp_path, respawn):
        policy = FaultPolicy(heartbeat_interval=0.1, respawn=respawn)
        fault = self._run(ProcessExecutor(max_workers=4), tmp_path, policy)
        assert fault.workers_lost >= 1
        if respawn:
            assert fault.respawns >= 1
        else:
            assert fault.blocks_requeued >= 1

    @pytest.mark.parametrize("respawn", [False, True])
    def test_socket_attach_crash_recovers(self, tmp_path, respawn):
        policy = FaultPolicy(heartbeat_interval=0.1, respawn=respawn)
        fault = self._run(SocketExecutor(workers=4), tmp_path, policy)
        assert fault.workers_lost >= 1
        if respawn:
            assert fault.respawns >= 1
        else:
            assert fault.blocks_requeued >= 1

    def test_attach_crash_without_policy_still_fails_fast(self, tmp_path):
        A, b, part, _ = _problem()
        solver = CrashOnceSolver(
            get_solver("scipy"), tmp_path / "fail-fast.sentinel"
        )
        ex = ProcessExecutor(max_workers=4)
        try:
            with pytest.raises(RuntimeError, match="died during attach"):
                ex.attach(A, b, part.sets, solver)
        finally:
            ex.close()


class TestAsyncRespawn:
    def test_flaky_kernel_thread_respawn(self):
        A, b, part, scheme = _problem()
        flaky = FlakySolver(get_solver("scipy"), fail_solves=(4, 7))
        res = async_iterate(
            A, b, part, scheme, flaky,
            stopping=StoppingCriterion(tolerance=1e-10, max_iterations=500),
            fault_policy=FaultPolicy(),
        )
        assert res.converged
        assert flaky.failures == 2
        assert res.fault_stats.workers_lost == 2
        assert res.fault_stats.respawns == 2

    def test_without_policy_kernel_failure_raises(self):
        A, b, part, scheme = _problem()
        flaky = FlakySolver(get_solver("scipy"), fail_solves=(2,))
        with pytest.raises(InjectedFault):
            async_iterate(
                A, b, part, scheme, flaky,
                stopping=StoppingCriterion(tolerance=1e-10, max_iterations=200),
            )

    def test_loss_budget_respected(self):
        A, b, part, scheme = _problem()
        flaky = FlakySolver(get_solver("scipy"), fail_solves=(2, 3), max_failures=2)
        with pytest.raises(InjectedFault):
            async_iterate(
                A, b, part, scheme, flaky,
                stopping=StoppingCriterion(tolerance=1e-10, max_iterations=200),
                fault_policy=FaultPolicy(max_worker_losses=1),
            )

    def test_permanent_fault_aborts_instead_of_spinning(self):
        """A block that fails EVERY solve is a permanent fault: the
        supervisor must surface the error promptly, not respawn into
        the same wall forever."""
        A, b, part, scheme = _problem()
        always = FlakySolver(get_solver("scipy"), fail_rate=1.0, seed=0)
        t0 = time.monotonic()
        with pytest.raises(InjectedFault):
            async_iterate(
                A, b, part, scheme, always,
                stopping=StoppingCriterion(tolerance=1e-10, max_iterations=10_000),
                fault_policy=FaultPolicy(),  # unlimited loss budget
            )
        assert time.monotonic() - t0 < 30.0


class _ScriptedExecutor(InlineExecutor):
    """Inline executor whose per-round block timings follow a script.

    ``script[r][w]`` is the seconds worker ``w`` "spent" in round ``r``
    (warm-up round 0 included); ``block_seconds`` reports the scripted
    cumulative sums, letting calibration tests plant exact timings.
    """

    def __init__(self, script):
        super().__init__()
        self._script = script
        self._rounds = 0
        self._scripted = {}

    def attach(self, *args, **kwargs):
        super().attach(*args, **kwargs)
        self._rounds = 0
        self._scripted = {w: 0.0 for w in range(len(self._script[0]))}

    def solve_blocks(self, tasks):
        out = super().solve_blocks(tasks)
        row = self._script[min(self._rounds, len(self._script) - 1)]
        for w, dt in enumerate(row):
            self._scripted[w] += dt
        self._rounds += 1
        return out

    def block_seconds(self):
        return dict(self._scripted)


class TestCalibrationOutlierGuard:
    """Satellite: median-of-rounds timing shrugs off one poisoned round."""

    def test_one_poisoned_round_leaves_plan_unchanged(self):
        clean_row = [0.10, 0.20]  # worker 1 is half as fast, always
        script_clean = [clean_row] * 6
        # Round 3 poisons worker 0 with a 50x transient stall.
        script_poisoned = [list(clean_row) for _ in range(6)]
        script_poisoned[3] = [5.0, 0.20]

        speeds_clean = measure_worker_speeds(
            _ScriptedExecutor(script_clean), 2, repeats=5, probe_size=8
        )
        speeds_poisoned = measure_worker_speeds(
            _ScriptedExecutor(script_poisoned), 2, repeats=5, probe_size=8
        )
        assert speeds_clean == pytest.approx(speeds_poisoned, rel=1e-9)
        assert speeds_clean[0] == pytest.approx(2 * speeds_clean[1], rel=1e-9)

        from repro.schedule import cost_model_placement

        plan_clean = cost_model_placement(1000, speeds_clean)
        plan_poisoned = cost_model_placement(1000, speeds_poisoned)
        assert plan_clean.sizes == plan_poisoned.sizes

    def test_naive_mean_would_have_been_fooled(self):
        """The guard is doing real work: without it (simulated by a
        plain mean over rounds) the poisoned round flips the ranking."""
        rounds_w0 = [0.10, 0.10, 0.10, 5.0, 0.10]
        rounds_w1 = [0.20] * 5
        naive0 = sum(rounds_w0) / len(rounds_w0)
        naive1 = sum(rounds_w1) / len(rounds_w1)
        assert naive0 > naive1  # the mean says w0 is SLOWER -- wrong

    def test_outlier_factor_validation(self):
        with pytest.raises(ValueError):
            measure_worker_speeds(InlineExecutor(), 1, outlier_factor=1.0)


class TestChaosWrapperContract:
    """ChaosExecutor honours the full Executor contract."""

    def test_lifecycle_and_passthrough(self):
        A, b, part, _ = _problem()
        inner = InlineExecutor()
        chaos = ChaosExecutor(inner, FaultInjector(seed=0))
        chaos.attach(A, b, part.sets, get_solver("scipy"))
        assert chaos.nblocks == part.nprocs
        z = np.ones(b.shape)
        full = chaos.solve_round([z] * part.nprocs)
        some = chaos.solve_blocks([(2, z)])
        np.testing.assert_array_equal(some[0], full[2])
        assert set(chaos.block_seconds()) == set(range(part.nprocs))
        chaos.detach()
        assert chaos.nblocks == 0
        chaos.close()

    def test_close_closes_inner(self):
        inner = InlineExecutor()
        A, b, part, _ = _problem()
        chaos = ChaosExecutor(inner, FaultInjector(seed=0))
        chaos.attach(A, b, part.sets, get_solver("scipy"))
        chaos.close()
        assert inner.nblocks == 0
