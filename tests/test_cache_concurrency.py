"""Concurrency hammer for :class:`repro.direct.cache.FactorizationCache`.

The thread backend points many workers at one cache, so the counters must
stay exact under contention (a single lock covers stats + LRU order) and
the per-key in-flight latch must guarantee

* the same key is never factored twice concurrently (latecomers wait);
* different keys factor *outside* the lock, so they can proceed in
  parallel;
* every ``factor()`` call is counted exactly once: ``hits + misses ==
  total requests``, always.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.solver import MultisplittingSolver
from repro.direct.base import DirectSolver, Factorization
from repro.direct.cache import FactorizationCache
from repro.direct.dense import DenseLU
from repro.matrices import diagonally_dominant, rhs_for_solution


class CountingDense(DirectSolver):
    """Dense kernel wrapper counting real factorizations, thread-safely.

    The counter lives on the *class* (not the instance) so it never
    enters the solver fingerprint -- instances with equal ``delay`` share
    cache entries, exactly like production kernels.
    """

    name = "counting-dense"
    factor_calls = 0
    in_flight = 0
    max_in_flight = 0
    _lock = threading.Lock()

    def __init__(self, delay: float = 0.0):
        self.delay = delay

    @classmethod
    def reset(cls) -> None:
        cls.factor_calls = 0
        cls.in_flight = 0
        cls.max_in_flight = 0

    def factor(self, A) -> Factorization:
        cls = type(self)
        with cls._lock:
            cls.factor_calls += 1
            cls.in_flight += 1
            cls.max_in_flight = max(cls.max_in_flight, cls.in_flight)
        try:
            if self.delay:
                time.sleep(self.delay)
            return DenseLU().factor(A)
        finally:
            with cls._lock:
                cls.in_flight -= 1


def _matrices(count: int, n: int = 12) -> list[np.ndarray]:
    rng = np.random.default_rng(42)
    out = []
    for _ in range(count):
        M = rng.normal(size=(n, n))
        M += n * np.eye(n)  # safely non-singular
        out.append(M)
    return out


class TestHammer:
    def test_counters_exact_under_contention(self):
        """N threads x M requests: hits + misses == total requests."""
        CountingDense.reset()
        cache = FactorizationCache()
        solver = CountingDense()
        mats = _matrices(5)
        keys = [cache.key_for(solver, M) for M in mats]
        n_threads, per_thread = 8, 200
        start = threading.Barrier(n_threads)
        failures: list[BaseException] = []

        def hammer(tid: int) -> None:
            try:
                start.wait()
                for i in range(per_thread):
                    j = (tid + i) % len(mats)
                    fact = cache.factor(solver, mats[j], key=keys[j])
                    assert fact is not None
            except BaseException as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        total = n_threads * per_thread
        assert cache.stats.hits + cache.stats.misses == total
        # each distinct matrix factored exactly once, by exactly one thread
        assert cache.stats.misses == len(mats)
        assert CountingDense.factor_calls == len(mats)
        assert cache.stats.hits == total - len(mats)
        assert len(cache) == len(mats)

    def test_same_key_concurrent_requests_factor_once(self):
        """A slow factorization is shared: latecomers wait, not refactor."""
        CountingDense.reset()
        cache = FactorizationCache()
        solver = CountingDense(delay=0.05)
        (M,) = _matrices(1)
        results: list[Factorization] = []
        start = threading.Barrier(6)

        def request() -> None:
            start.wait()
            results.append(cache.factor(solver, M))

        threads = [threading.Thread(target=request) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert CountingDense.factor_calls == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 5
        assert all(f is results[0] for f in results)

    def test_distinct_keys_factor_outside_the_lock(self):
        """Two slow factorizations of different keys overlap in time.

        If misses factored while holding the table lock, ``in_flight``
        could never exceed 1.
        """
        CountingDense.reset()
        cache = FactorizationCache()
        solver = CountingDense(delay=0.1)
        mats = _matrices(2)
        start = threading.Barrier(2)

        def request(j: int) -> None:
            start.wait()
            cache.factor(solver, mats[j])

        threads = [threading.Thread(target=request, args=(j,)) for j in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert CountingDense.factor_calls == 2
        assert CountingDense.max_in_flight == 2

    def test_failed_factorization_releases_waiters(self):
        """An exception inside the kernel must not deadlock latecomers."""

        class Exploding(CountingDense):
            name = "exploding-dense"

            def factor(self, A):
                type(self).factor_calls += 1
                time.sleep(0.02)
                raise RuntimeError("boom")

        Exploding.reset()
        cache = FactorizationCache()
        solver = Exploding()
        (M,) = _matrices(1)
        outcomes: list[str] = []
        start = threading.Barrier(4)

        def request() -> None:
            start.wait()
            try:
                cache.factor(solver, M)
                outcomes.append("ok")
            except RuntimeError:
                outcomes.append("boom")

        threads = [threading.Thread(target=request) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert all(not t.is_alive() for t in threads), "a waiter deadlocked"
        assert outcomes == ["boom"] * 4
        # every request is still counted exactly once
        assert cache.stats.hits + cache.stats.misses == 4

    def test_counters_exact_with_evictions(self):
        """The invariant survives an LRU bound tighter than the key set."""
        CountingDense.reset()
        cache = FactorizationCache(capacity=2)
        solver = CountingDense()
        mats = _matrices(4)
        keys = [cache.key_for(solver, M) for M in mats]
        n_threads, per_thread = 6, 100
        start = threading.Barrier(n_threads)

        def hammer(tid: int) -> None:
            start.wait()
            for i in range(per_thread):
                j = (tid * 3 + i) % len(mats)
                cache.factor(solver, mats[j], key=keys[j])

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * per_thread
        assert cache.stats.hits + cache.stats.misses == total
        # misses == real factorizations, even when eviction forces refactors
        assert cache.stats.misses == CountingDense.factor_calls
        assert cache.stats.evictions == cache.stats.misses - cache.capacity
        assert len(cache) <= cache.capacity


class TestSolverFacadeHammer:
    """Many threads driving ONE MultisplittingSolver over a shared cache
    -- the serve pool's exact usage pattern.

    Regression: the facade used to cache a single stateful executor on
    ``self._executor``, so concurrent solve() calls interleaved attach
    state ("InlineExecutor is not attached", cross-matrix dimension
    mismatches).  With per-thread owned executors every thread solves
    correctly, and the lock-exact shared cache factors each sub-block
    key exactly once across all of them.
    """

    def _problems(self):
        out = []
        for n, seed in ((120, 3), (72, 9)):
            A = diagonally_dominant(n, dominance=1.5, bandwidth=4, seed=seed)
            b, x_true = rhs_for_solution(A, seed=seed + 1)
            out.append((A, b, x_true))
        return out

    @pytest.mark.parametrize("backend", ["inline", "threads"])
    def test_concurrent_solves_share_one_solver(self, backend):
        L = 4
        cache = FactorizationCache()
        solver = MultisplittingSolver(
            processors=L, mode="sequential", cache=cache, backend=backend
        )
        problems = self._problems()
        n_threads = 8
        per_thread = 6 if backend == "inline" else 2
        start = threading.Barrier(n_threads)
        failures: list[BaseException] = []

        def drive(tid: int) -> None:
            try:
                start.wait()
                for i in range(per_thread):
                    A, b, x_true = problems[(tid + i) % len(problems)]
                    res = solver.solve(A, b)
                    assert res.converged, res.status
                    assert res.error_vs(x_true) < 1e-6
            except BaseException as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        threads = [
            threading.Thread(target=drive, args=(t,)) for t in range(n_threads)
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            solver.close()
        assert not failures, failures[0]
        # No torn stats, no duplicate factorizations: across every
        # concurrent solve, each of the 2 x L distinct sub-block keys
        # was factored exactly once; everything else hit.
        assert cache.stats.misses == len(problems) * L
        assert len(cache) == len(problems) * L
        assert cache.stats.hits + cache.stats.misses == cache.stats.lookups

    def test_close_is_thread_safe_and_reusable(self):
        """close() tears down every thread's owned executor, and the
        solver keeps working afterwards (fresh per-thread executors)."""
        cache = FactorizationCache()
        solver = MultisplittingSolver(
            processors=4, mode="sequential", cache=cache, backend="inline"
        )
        A, b, x_true = self._problems()[0]

        def drive() -> None:
            res = solver.solve(A, b)
            assert res.converged

        threads = [threading.Thread(target=drive) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        solver.close()
        res = solver.solve(A, b)  # lazily owns a fresh executor
        assert res.converged and res.error_vs(x_true) < 1e-6
        solver.close()
