"""Batched multi-RHS triangular solves: one vectorized call == column loop."""

import numpy as np
import pytest

from repro.direct import (
    backward_substitution,
    forward_substitution,
    get_solver,
    sparse_lower_solve,
    sparse_upper_solve,
)
from repro.matrices import diagonally_dominant, poisson_2d, rhs_for_solution

KERNELS = ["dense", "banded", "sparse", "scipy"]


def rhs_batch(n: int, k: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal((n, k))


def assert_machine_equal(X, X_loop):
    """Batched and looped results must agree to machine precision.

    The sparse/banded sweeps are bit-identical; the dense kernel's batched
    path goes through a different BLAS routine (gemv vs dot), which may
    differ in the last ulp.
    """
    np.testing.assert_allclose(X, X_loop, rtol=1e-14, atol=1e-13)


@pytest.mark.parametrize("kernel", KERNELS)
class TestSolveMany:
    def test_equals_column_loop_banded_matrix(self, kernel):
        A = diagonally_dominant(40, dominance=1.5, bandwidth=4, seed=1)
        fact = get_solver(kernel).factor(A)
        B = rhs_batch(40, 6, seed=2)
        X = fact.solve_many(B)
        X_loop = np.column_stack([fact.solve(B[:, j]) for j in range(B.shape[1])])
        assert_machine_equal(X, X_loop)

    def test_equals_column_loop_poisson(self, kernel):
        A = poisson_2d(6)
        fact = get_solver(kernel).factor(A)
        B = rhs_batch(A.shape[0], 3, seed=3)
        X = fact.solve_many(B)
        X_loop = np.column_stack([fact.solve(B[:, j]) for j in range(B.shape[1])])
        assert_machine_equal(X, X_loop)
        np.testing.assert_allclose(A @ X, B, atol=1e-9)

    def test_one_dimensional_passthrough(self, kernel):
        A = diagonally_dominant(20, dominance=1.5, bandwidth=3, seed=4)
        fact = get_solver(kernel).factor(A)
        b = rhs_batch(20, 1, seed=5)[:, 0]
        np.testing.assert_array_equal(fact.solve_many(b), fact.solve(b))

    def test_single_column_batch(self, kernel):
        A = diagonally_dominant(15, dominance=1.5, bandwidth=3, seed=6)
        fact = get_solver(kernel).factor(A)
        B = rhs_batch(15, 1, seed=7)
        np.testing.assert_array_equal(fact.solve_many(B)[:, 0], fact.solve(B[:, 0]))

    def test_shape_validation(self, kernel):
        A = diagonally_dominant(10, dominance=1.5, bandwidth=2, seed=8)
        fact = get_solver(kernel).factor(A)
        with pytest.raises(ValueError):
            fact.solve_many(np.zeros((11, 2)))
        with pytest.raises(ValueError):
            fact.solve_many(np.zeros((10, 2, 2)))


class TestBatchedTriangularKernels:
    def test_dense_forward_backward_batched(self):
        rng = np.random.default_rng(9)
        n, k = 12, 4
        L = np.tril(rng.standard_normal((n, n))) + 3.0 * np.eye(n)
        U = np.triu(rng.standard_normal((n, n))) + 3.0 * np.eye(n)
        B = rng.standard_normal((n, k))
        for tri, fn, kwargs in [
            (L, forward_substitution, {}),
            (L, forward_substitution, {"unit_diagonal": True}),
            (U, backward_substitution, {}),
        ]:
            X = fn(tri, B, **kwargs)
            X_loop = np.column_stack([fn(tri, B[:, j], **kwargs) for j in range(k)])
            assert_machine_equal(X, X_loop)

    def test_duplicate_csc_entries_accumulate(self):
        """Non-canonical CSC input: duplicates must sum, not last-write-win."""
        import scipy.sparse as sp

        L = sp.csc_matrix(
            (np.array([0.5, 0.5]), np.array([2, 2]), np.array([0, 2, 2, 2])),
            shape=(3, 3),
        )
        x = sparse_lower_solve(L, np.array([1.0, 0.0, 0.0]), unit_diagonal=True)
        np.testing.assert_array_equal(x, [1.0, 0.0, -1.0])
        X = sparse_lower_solve(
            L, np.array([[1.0, 2.0], [0.0, 0.0], [0.0, 0.0]]), unit_diagonal=True
        )
        np.testing.assert_array_equal(X[2], [-1.0, -2.0])
        U = sp.csc_matrix(
            (np.array([1.0, 0.25, 0.25, 2.0]), np.array([0, 0, 0, 1]),
             np.array([0, 1, 4])),
            shape=(2, 2),
        )
        xu = sparse_upper_solve(U, np.array([1.0, 2.0]))
        np.testing.assert_array_equal(xu, [0.5, 1.0])  # U[0,1] == 0.5 summed

    def test_sparse_lower_upper_batched(self):
        import scipy.sparse as sp

        rng = np.random.default_rng(10)
        n, k = 14, 5
        Ld = np.tril(rng.standard_normal((n, n)), -1)
        Ld[np.abs(Ld) < 0.8] = 0.0
        L = sp.csc_matrix(Ld + np.eye(n))
        Ud = np.triu(rng.standard_normal((n, n)), 1)
        Ud[np.abs(Ud) < 0.8] = 0.0
        U = sp.csc_matrix(Ud + 2.0 * np.eye(n))
        B = rng.standard_normal((n, k))
        XL = sparse_lower_solve(L, B)
        XL_loop = np.column_stack([sparse_lower_solve(L, B[:, j]) for j in range(k)])
        np.testing.assert_array_equal(XL, XL_loop)
        XU = sparse_upper_solve(U, B)
        XU_loop = np.column_stack([sparse_upper_solve(U, B[:, j]) for j in range(k)])
        np.testing.assert_array_equal(XU, XU_loop)
        np.testing.assert_allclose(L @ XL, B, atol=1e-10)
        np.testing.assert_allclose(U @ XU, B, atol=1e-10)


class TestBatchedDriver:
    def test_multisplitting_batched_rhs_matches_columns(self):
        """The driver solves a block of right-hand sides in one pass."""
        from repro.core import make_weighting, multisplitting_iterate, uniform_bands

        A = diagonally_dominant(48, dominance=1.4, bandwidth=4, seed=11)
        b, _ = rhs_for_solution(A, seed=12)
        B = np.column_stack([b, -2.0 * b, np.roll(b, 5)])
        part = uniform_bands(48, 3).to_general()
        scheme = make_weighting("ownership", part)
        solver = get_solver("scipy")
        batched = multisplitting_iterate(A, B, part, scheme, solver)
        assert batched.converged
        assert batched.x.shape == B.shape
        assert batched.residual <= 1e-7
        for j in range(B.shape[1]):
            single = multisplitting_iterate(A, B[:, j], part, scheme, solver)
            np.testing.assert_allclose(batched.x[:, j], single.x, atol=1e-7)
