"""Tests for the extension features.

Covers the paper's announced future-work items and Remark-2 machinery:
heterogeneous per-band direct kernels, permuted/interleaved partitions,
residual-metric distributed stopping, and MatrixMarket IO.
"""

import numpy as np
import pytest

from repro.core import (
    MultisplittingSolver,
    StoppingCriterion,
    interleaved_partition,
    make_weighting,
    multisplitting_iterate,
    permuted_bands,
    uniform_bands,
)
from repro.core.sync import run_synchronous
from repro.direct import get_solver
from repro.grid import cluster1
from repro.matrices import (
    MMFormatError,
    cage_like,
    diagonally_dominant,
    poisson_2d,
    read_mm,
    rhs_for_solution,
    write_mm,
)


def problem(n=120, seed=1, **kw):
    A = diagonally_dominant(n, dominance=kw.pop("dominance", 1.5),
                            bandwidth=kw.pop("bandwidth", 10), seed=seed)
    b, x_true = rhs_for_solution(A, seed=seed + 1)
    return A, b, x_true


class TestHeterogeneousKernels:
    """Paper conclusion: 'different direct algorithms on different clusters'."""

    def test_mixed_kernels_sequential(self):
        A, b, x_true = problem()
        kernels = [get_solver(k) for k in ("dense", "sparse", "scipy", "banded")]
        s = MultisplittingSolver(4, mode="sequential", direct_solver=kernels)
        r = s.solve(A, b)
        assert r.converged
        np.testing.assert_allclose(r.x, x_true, atol=1e-6)

    def test_mixed_kernels_by_name(self):
        A, b, x_true = problem()
        s = MultisplittingSolver(
            2, mode="sequential", direct_solver=["sparse", "scipy"]
        )
        r = s.solve(A, b)
        np.testing.assert_allclose(r.x, x_true, atol=1e-6)

    def test_mixed_kernels_distributed(self):
        A, b, x_true = problem(n=200)
        s = MultisplittingSolver(
            mode="synchronous",
            direct_solver=["scipy", "sparse", "scipy", "dense"],
        )
        r = s.solve(A, b, cluster=cluster1(4))
        assert r.status == "ok"
        np.testing.assert_allclose(r.x, x_true, atol=1e-6)

    def test_same_iterates_as_homogeneous(self):
        """Kernel choice must not change the mathematics, only the cost."""
        A, b, _ = problem()
        part = uniform_bands(120, 3).to_general()
        w = make_weighting("ownership", part)
        hom = multisplitting_iterate(A, b, part, w, get_solver("scipy"))
        mixed = multisplitting_iterate(
            A, b, part, w,
            [get_solver("dense"), get_solver("scipy"), get_solver("sparse")],
        )
        assert hom.iterations == mixed.iterations
        np.testing.assert_allclose(hom.x, mixed.x, atol=1e-9)

    def test_wrong_count_rejected(self):
        A, b, _ = problem()
        s = MultisplittingSolver(
            4, mode="sequential", direct_solver=["scipy", "dense"]
        )
        with pytest.raises(ValueError, match="kernels for"):
            s.solve(A, b)


class TestRemark2Partitions:
    def test_interleaved_is_valid_partition(self):
        g = interleaved_partition(12, 3, chunk=2)
        np.testing.assert_array_equal(g.sets[0], [0, 1, 6, 7])
        np.testing.assert_array_equal(g.sets[1], [2, 3, 8, 9])
        assert g.multiplicity().max() == 1

    def test_interleaved_converges(self):
        A, b, x_true = problem(n=120)
        g = interleaved_partition(120, 4, chunk=10)
        w = make_weighting("ownership", g)
        res = multisplitting_iterate(A, b, g, w, get_solver("scipy"))
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, atol=1e-6)

    def test_interleaved_validation(self):
        with pytest.raises(ValueError):
            interleaved_partition(10, 0)
        with pytest.raises(ValueError):
            interleaved_partition(10, 2, chunk=0)
        with pytest.raises(ValueError):
            interleaved_partition(3, 5)
        with pytest.raises(ValueError):
            interleaved_partition(4, 3, chunk=2)  # leaves processor 2 empty

    def test_permuted_identity_equals_uniform(self):
        g1 = permuted_bands(np.arange(20), 4)
        g2 = uniform_bands(20, 4).to_general()
        for a, b_ in zip(g1.sets, g2.sets):
            np.testing.assert_array_equal(a, b_)

    def test_permuted_bands_converge(self):
        """Remark 2: permutation reduces scattered sets to Figure-1 bands."""
        A, b, x_true = problem(n=100)
        rng = np.random.default_rng(3)
        perm = rng.permutation(100)
        g = permuted_bands(perm, 4)
        w = make_weighting("ownership", g)
        res = multisplitting_iterate(
            A, b, g, w, get_solver("scipy"),
            stopping=StoppingCriterion(max_iterations=4000),
        )
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, atol=1e-5)

    def test_permuted_with_overlap(self):
        g = permuted_bands(np.arange(20)[::-1], 2, overlap=2)
        assert g.multiplicity().max() == 2

    def test_permuted_validation(self):
        with pytest.raises(ValueError):
            permuted_bands(np.array([0, 0, 1]), 2)


class TestResidualMetricDistributed:
    def test_sync_residual_metric_converges(self):
        A, b, x_true = problem(n=200)
        part = uniform_bands(200, 4).to_general()
        w = make_weighting("ownership", part)
        res = run_synchronous(
            A, b, part, w, get_solver("scipy"), cluster1(4),
            stopping=StoppingCriterion(metric="residual", tolerance=1e-7),
        )
        assert res.status == "ok"
        assert res.residual <= 1e-6  # the monitor controlled the true residual
        np.testing.assert_allclose(res.x, x_true, atol=1e-5)

    def test_residual_metric_via_facade(self):
        A, b, _ = problem(n=150)
        s = MultisplittingSolver(mode="synchronous")
        s.stopping = StoppingCriterion(metric="residual", tolerance=1e-7)
        r = s.solve(A, b, cluster=cluster1(3))
        assert r.status == "ok" and r.residual <= 1e-6

    def test_local_residual_zero_right_after_solve(self):
        from repro.core.local import build_local_systems

        A, b, _ = problem(n=60)
        part = uniform_bands(60, 2).to_general()
        systems = build_local_systems(A, b, part.sets, get_solver("scipy"))
        z = np.zeros(60)
        piece = systems[0].solve_with(z)
        r = systems[0].local_residual(piece, z)
        assert np.max(np.abs(r)) < 1e-10

    def test_residual_flops_positive(self):
        from repro.core.local import build_local_systems

        A, b, _ = problem(n=40)
        part = uniform_bands(40, 2).to_general()
        systems = build_local_systems(A, b, part.sets, get_solver("scipy"))
        assert systems[0].residual_flops > 0


class TestMatrixMarket:
    def test_roundtrip_general(self, tmp_path):
        A = cage_like(80, seed=4)
        p = tmp_path / "cage.mtx"
        write_mm(p, A, comment="cage analog\nsecond line")
        B = read_mm(p)
        assert abs(A - B).max() < 1e-12

    def test_roundtrip_poisson(self, tmp_path):
        A = poisson_2d(5)
        p = tmp_path / "poisson.mtx"
        write_mm(p, A)
        assert abs(read_mm(p) - A).max() < 1e-12

    def test_reads_symmetric_storage(self, tmp_path):
        p = tmp_path / "sym.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 4\n"
            "1 1 2.0\n2 2 2.0\n3 3 2.0\n3 1 -1.0\n"
        )
        A = read_mm(p).toarray()
        assert A[0, 2] == -1.0 and A[2, 0] == -1.0

    def test_reads_pattern(self, tmp_path):
        p = tmp_path / "pat.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 2\n1 1\n2 2\n"
        )
        A = read_mm(p).toarray()
        np.testing.assert_allclose(A, np.eye(2))

    def test_skew_symmetric(self, tmp_path):
        p = tmp_path / "skew.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate real skew-symmetric\n"
            "2 2 1\n2 1 3.0\n"
        )
        A = read_mm(p).toarray()
        assert A[1, 0] == 3.0 and A[0, 1] == -3.0

    def test_comments_skipped(self, tmp_path):
        p = tmp_path / "c.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n% another\n"
            "1 1 1\n1 1 5.0\n"
        )
        assert read_mm(p)[0, 0] == 5.0

    def test_errors(self, tmp_path):
        bad = tmp_path / "bad.mtx"
        bad.write_text("hello\n")
        with pytest.raises(MMFormatError):
            read_mm(bad)
        bad.write_text("%%MatrixMarket matrix array real general\n1 1\n1.0\n")
        with pytest.raises(MMFormatError):
            read_mm(bad)
        bad.write_text(
            "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n"
        )
        with pytest.raises(MMFormatError):
            read_mm(bad)
        bad.write_text(
            "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n"
        )
        with pytest.raises(MMFormatError):
            read_mm(bad)

    def test_hb_and_mm_agree(self, tmp_path):
        from repro.matrices import read_rua, write_rua

        A = cage_like(60, seed=5)
        write_mm(tmp_path / "a.mtx", A)
        write_rua(tmp_path / "a.rua", A)
        B1 = read_mm(tmp_path / "a.mtx")
        B2 = read_rua(tmp_path / "a.rua")
        assert abs(B1 - B2).max() < 1e-9
