"""Unit tests for repro.linalg.sparse structural helpers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.linalg import (
    as_csc,
    as_csr,
    column_block,
    extract_block,
    is_square,
    lower_bandwidth,
    row_block,
    sparse_equal,
    upper_bandwidth,
)


@pytest.fixture
def A():
    return sp.csr_matrix(
        np.array(
            [
                [4.0, -1.0, 0.0, 0.0],
                [-1.0, 4.0, -1.0, 0.0],
                [0.0, -1.0, 4.0, -1.0],
                [0.0, 0.0, -1.0, 4.0],
            ]
        )
    )


def test_as_csr_accepts_dense():
    M = as_csr(np.eye(3))
    assert sp.issparse(M) and M.format == "csr"


def test_as_csc_accepts_csr(A):
    assert as_csc(A).format == "csc"


def test_is_square(A):
    assert is_square(A)
    assert not is_square(sp.csr_matrix(np.ones((2, 3))))


def test_row_block_matches_dense(A):
    np.testing.assert_allclose(row_block(A, 1, 3).toarray(), A.toarray()[1:3, :])


def test_column_block_matches_dense(A):
    np.testing.assert_allclose(column_block(A, 0, 2).toarray(), A.toarray()[:, 0:2])


def test_extract_block_with_arrays(A):
    rows = np.array([0, 2])
    cols = np.array([1, 3])
    np.testing.assert_allclose(
        extract_block(A, rows, cols).toarray(), A.toarray()[np.ix_(rows, cols)]
    )


def test_extract_block_with_slices(A):
    np.testing.assert_allclose(
        extract_block(A, slice(1, 4), slice(0, 2)).toarray(), A.toarray()[1:4, 0:2]
    )


def test_extract_block_out_of_range(A):
    with pytest.raises(IndexError):
        extract_block(A, np.array([5]), np.array([0]))


def test_bandwidths_tridiagonal(A):
    assert lower_bandwidth(A) == 1
    assert upper_bandwidth(A) == 1


def test_bandwidths_asymmetric():
    M = sp.csr_matrix(np.triu(np.ones((5, 5))))
    assert lower_bandwidth(M) == 0
    assert upper_bandwidth(M) == 4


def test_bandwidth_ignores_explicit_zeros():
    M = sp.csr_matrix((np.array([0.0]), (np.array([4]), np.array([0]))), shape=(5, 5))
    assert lower_bandwidth(M) == 0


def test_sparse_equal_exact(A):
    assert sparse_equal(A, A.copy())
    B = A.copy()
    B[0, 0] = 5.0
    assert not sparse_equal(A, B)
    assert sparse_equal(A, B, atol=2.0)


def test_sparse_equal_shape_mismatch(A):
    assert not sparse_equal(A, sp.identity(3))
