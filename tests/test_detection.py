"""Tests for the convergence detection protocols."""

import pytest

from repro.detection import (
    AsyncCentralizedDetector,
    AsyncDecentralizedDetector,
    make_async_detector,
    sync_converged,
)
from repro.grid import cluster1, cluster3


def run_procs(nprocs, body, cluster=None):
    cluster = cluster or cluster1(min(nprocs, 20))
    eng = cluster.make_engine()
    for i in range(nprocs):
        eng.spawn(body, cluster.hosts[i % len(cluster.hosts)])
    eng.run()
    return eng.results()


class TestSyncDetection:
    @pytest.mark.parametrize("method", ["centralized", "decentralized"])
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 7, 8])
    def test_all_true(self, method, nprocs):
        def body(ctx):
            out = yield from sync_converged(ctx, True, method=method)
            return out

        assert all(run_procs(nprocs, body))

    @pytest.mark.parametrize("method", ["centralized", "decentralized"])
    @pytest.mark.parametrize("nprocs", [2, 5, 8])
    def test_one_false(self, method, nprocs):
        def body(ctx):
            flag = ctx.rank != nprocs - 1
            out = yield from sync_converged(ctx, flag, method=method)
            return out

        assert not any(run_procs(nprocs, body))

    @pytest.mark.parametrize("method", ["centralized", "decentralized"])
    def test_repeated_votes_stay_consistent(self, method):
        """Simulates the per-iteration votes of the synchronous solver."""

        def body(ctx):
            verdicts = []
            for it in range(4):
                flag = it >= 2  # everyone converges at iteration 2
                v = yield from sync_converged(ctx, flag, method=method)
                verdicts.append(v)
            return verdicts

        results = run_procs(5, body)
        assert all(r == [False, False, True, True] for r in results)

    def test_unknown_method(self):
        def body(ctx):
            out = yield from sync_converged(ctx, True, method="gossip")
            return out

        from repro.grid import SimProcessError

        with pytest.raises(SimProcessError):
            run_procs(2, body)


def _async_body_factory(kind, converge_at, max_iters=300):
    """Each rank r flips to locally-converged at iteration converge_at[r]."""

    def body(ctx):
        det = make_async_detector(kind, ctx)
        it = 0
        while it < max_iters:
            yield ctx.compute(ctx.host.speed * 1e-3)  # 1 ms of local work
            flag = it >= converge_at[ctx.rank]
            stop = yield from det.update(flag)
            if stop:
                return ("stopped", it, det.messages_sent)
            it += 1
        return ("timeout", it, det.messages_sent)

    return body


class TestAsyncDetectors:
    @pytest.mark.parametrize("kind", ["centralized", "decentralized"])
    @pytest.mark.parametrize("nprocs", [2, 3, 5, 8])
    def test_detects_after_everyone_converges(self, kind, nprocs):
        converge_at = [3 + 2 * r for r in range(nprocs)]
        results = run_procs(nprocs, _async_body_factory(kind, converge_at))
        assert all(r[0] == "stopped" for r in results)
        # no rank may stop before it even converged locally
        for rank, (_, it, _) in enumerate(results):
            assert it >= converge_at[rank]

    @pytest.mark.parametrize("kind", ["centralized", "decentralized"])
    def test_never_stops_if_one_never_converges(self, kind):
        nprocs = 4
        converge_at = [0, 0, 0, 10**9]
        results = run_procs(nprocs, _async_body_factory(kind, converge_at, max_iters=60))
        assert all(r[0] == "timeout" for r in results)

    @pytest.mark.parametrize("kind", ["centralized", "decentralized"])
    def test_oscillating_process_delays_stop(self, kind):
        """A rank that un-converges after reporting must cancel detection."""
        nprocs = 3

        def body(ctx):
            det = make_async_detector(kind, ctx)
            it = 0
            while it < 200:
                yield ctx.compute(ctx.host.speed * 1e-3)
                if ctx.rank == 1:
                    # oscillate until iteration 40, then stay converged
                    flag = (it % 3 != 0) if it < 40 else True
                else:
                    flag = True
                stop = yield from det.update(flag)
                if stop:
                    return it
                it += 1
            return -1

        results = run_procs(nprocs, body)
        assert all(r >= 40 or r == -1 for r in results)
        assert any(r > 0 for r in results)

    @pytest.mark.parametrize("kind", ["centralized", "decentralized"])
    def test_single_process(self, kind):
        results = run_procs(1, _async_body_factory(kind, [5]))
        assert results[0][0] == "stopped"

    @pytest.mark.parametrize("kind", ["centralized", "decentralized"])
    def test_works_on_wan_cluster(self, kind):
        cluster = cluster3(6)
        converge_at = [2, 4, 6, 8, 10, 12]
        results = run_procs(6, _async_body_factory(kind, converge_at), cluster=cluster)
        assert all(r[0] == "stopped" for r in results)

    def test_centralized_state_change_economy(self):
        """Steady states generate no detection traffic."""
        nprocs = 4
        converge_at = [1, 1, 1, 30]
        results = run_procs(
            nprocs, _async_body_factory("centralized", converge_at, max_iters=200)
        )
        # workers report twice at most before verification (False once, True once)
        worker_msgs = [r[2] for i, r in enumerate(results) if i != 0]
        assert all(m <= 10 for m in worker_msgs)

    def test_coordinator_rank_validation(self):
        def body(ctx):
            AsyncCentralizedDetector(ctx, coordinator=99)
            yield ctx.sleep(0)

        from repro.grid import SimProcessError

        with pytest.raises(SimProcessError):
            run_procs(2, body)

    def test_decentralized_tree_shape(self):
        def body(ctx):
            det = AsyncDecentralizedDetector(ctx)
            return det.parent, det.children
            yield  # pragma: no cover

        results = run_procs(7, body)
        assert results[0] == (None, [1, 2])
        assert results[1] == (0, [3, 4])
        assert results[2] == (0, [5, 6])
        assert results[6] == (2, [])
