"""Tests for the discrete-event engine (repro.grid.engine)."""

import pytest

from repro.grid import (
    ANY,
    DeadlockError,
    OutOfSimMemory,
    SimProcessError,
    cluster1,
    custom_cluster,
)


def make(nprocs=2, **kw):
    cluster = cluster1(nprocs, **kw)
    return cluster, cluster.make_engine()


class TestCompute:
    def test_compute_advances_time(self):
        cluster, eng = make(1)
        host = cluster.hosts[0]

        def proc(ctx):
            yield ctx.compute(host.speed * 2.0)  # exactly 2 seconds
            return ctx.now

        eng.spawn(proc, host)
        eng.run()
        assert eng.results()[0] == pytest.approx(2.0)

    def test_heterogeneous_speeds(self):
        cluster = custom_cluster("het", {"s": [1e6, 2e6]})
        eng = cluster.make_engine()

        def proc(ctx):
            yield ctx.compute(2e6)
            return ctx.now

        for h in cluster.hosts:
            eng.spawn(proc, h)
        eng.run()
        t_slow, t_fast = eng.results()
        assert t_slow == pytest.approx(2.0)
        assert t_fast == pytest.approx(1.0)

    def test_busy_time_accounted(self):
        cluster, eng = make(1)
        host = cluster.hosts[0]

        def proc(ctx):
            yield ctx.compute(host.speed)
            yield ctx.sleep(5.0)

        eng.spawn(proc, host)
        eng.run()
        assert host.busy_time == pytest.approx(1.0)

    def test_sleep_negative_raises_inside_process(self):
        cluster, eng = make(1)

        def proc(ctx):
            yield ctx.sleep(-1.0)

        eng.spawn(proc, cluster.hosts[0])
        with pytest.raises(SimProcessError):
            eng.run()


class TestMessaging:
    def test_send_recv_roundtrip(self):
        cluster, eng = make(2)

        def sender(ctx):
            yield ctx.send(1, nbytes=1000, payload="hello", tag=7)

        def receiver(ctx):
            msg = yield ctx.recv(source=0, tag=7)
            return (msg.payload, msg.delivered_at > 0.0)

        eng.spawn(sender, cluster.hosts[0])
        eng.spawn(receiver, cluster.hosts[1])
        eng.run()
        payload, delayed = eng.results()[1]
        assert payload == "hello"
        assert delayed

    def test_transfer_time_matches_bandwidth(self):
        cluster, eng = make(2)
        nbytes = 12_500_000  # exactly 1 second at 12.5 MB/s

        def sender(ctx):
            yield ctx.send(1, nbytes=nbytes, tag=0)

        def receiver(ctx):
            msg = yield ctx.recv()
            return msg.delivered_at

        eng.spawn(sender, cluster.hosts[0])
        eng.spawn(receiver, cluster.hosts[1])
        eng.run()
        t = eng.results()[1]
        assert t == pytest.approx(1.0 + 1e-4, rel=1e-3)

    def test_same_host_delivery_instant(self):
        cluster = cluster1(1)
        eng = cluster.make_engine()
        host = cluster.hosts[0]

        def a(ctx):
            yield ctx.send(1, nbytes=10**9, tag=0)

        def b(ctx):
            msg = yield ctx.recv()
            return msg.delivered_at

        eng.spawn(a, host)
        eng.spawn(b, host)
        eng.run()
        assert eng.results()[1] == pytest.approx(0.0)

    def test_tag_and_source_filtering(self):
        cluster, eng = make(3)

        def s1(ctx):
            yield ctx.send(2, nbytes=10, payload="from0", tag="x")

        def s2(ctx):
            yield ctx.send(2, nbytes=10, payload="from1", tag="y")

        def r(ctx):
            m_y = yield ctx.recv(tag="y")
            m_x = yield ctx.recv(source=0, tag=ANY)
            return (m_y.payload, m_x.payload)

        eng.spawn(s1, cluster.hosts[0])
        eng.spawn(s2, cluster.hosts[1])
        eng.spawn(r, cluster.hosts[2])
        eng.run()
        assert eng.results()[2] == ("from1", "from0")

    def test_try_recv_polls(self):
        cluster, eng = make(2)

        def sender(ctx):
            yield ctx.sleep(1.0)
            yield ctx.send(1, nbytes=10, payload=42, tag=0)

        def poller(ctx):
            first = yield ctx.try_recv()
            yield ctx.sleep(5.0)
            second = yield ctx.try_recv()
            return (first, second.payload)

        eng.spawn(sender, cluster.hosts[0])
        eng.spawn(poller, cluster.hosts[1])
        eng.run()
        first, second = eng.results()[1]
        assert first is None
        assert second == 42

    def test_deadlock_detected(self):
        cluster, eng = make(2)

        def waiter(ctx):
            yield ctx.recv(tag="never")

        eng.spawn(waiter, cluster.hosts[0])
        eng.spawn(waiter, cluster.hosts[1])
        with pytest.raises(DeadlockError):
            eng.run()

    def test_send_to_unknown_pid(self):
        cluster, eng = make(1)

        def proc(ctx):
            yield ctx.send(5, nbytes=1)

        eng.spawn(proc, cluster.hosts[0])
        with pytest.raises((SimProcessError, ValueError)):
            eng.run()


class TestDeterminism:
    def test_identical_runs(self):
        def run_once():
            cluster = cluster1(4)
            eng = cluster.make_engine()

            def proc(ctx):
                log = []
                if ctx.rank == 0:
                    for dst in range(1, 4):
                        yield ctx.send(dst, nbytes=1000 * dst, payload=dst, tag=0)
                    for _ in range(3):
                        m = yield ctx.recv()
                        log.append((m.source, round(m.delivered_at, 9)))
                else:
                    m = yield ctx.recv()
                    yield ctx.compute(1e6 * ctx.rank)
                    yield ctx.send(0, nbytes=500, payload=m.payload, tag=1)
                    log.append(round(ctx.now, 9))
                return log

            for h in cluster.hosts:
                eng.spawn(proc, h)
            eng.run()
            return eng.results()

        assert run_once() == run_once()


class TestMemory:
    def test_malloc_within_capacity(self):
        cluster, eng = make(1)
        host = cluster.hosts[0]

        def proc(ctx):
            yield ctx.malloc(host.memory_bytes // 2)
            used = host.memory_used
            yield ctx.mfree(host.memory_bytes // 2)
            return (used, host.memory_used)

        eng.spawn(proc, host)
        eng.run()
        used, after = eng.results()[0]
        assert used == host.memory_bytes // 2
        assert after == 0

    def test_oom_thrown_into_process(self):
        cluster, eng = make(1)
        host = cluster.hosts[0]

        def proc(ctx):
            try:
                yield ctx.malloc(host.memory_bytes + 1)
            except OutOfSimMemory:
                return "nem"
            return "fit"

        eng.spawn(proc, host)
        eng.run()
        assert eng.results()[0] == "nem"

    def test_unhandled_oom_escalates(self):
        cluster, eng = make(1)
        host = cluster.hosts[0]

        def proc(ctx):
            yield ctx.malloc(host.memory_bytes * 2)

        eng.spawn(proc, host)
        with pytest.raises(SimProcessError):
            eng.run()
