"""Tests for stopping criteria, preconditioning hooks and Newton extension."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    MultisplittingSolver,
    StoppingCriterion,
    jacobi_preconditioner,
    newton_multisplitting,
    row_equilibrate,
)
from repro.matrices import (
    diagonally_dominant,
    is_strictly_diagonally_dominant,
    poisson_1d,
    rhs_for_solution,
)


class TestStoppingCriterion:
    def test_streak_semantics(self):
        c = StoppingCriterion(tolerance=1e-3, consecutive=2)
        s = c.new_state()
        assert not s.observe(1e-4)
        assert s.observe(1e-4)
        assert s.converged

    def test_streak_reset_on_bad_value(self):
        c = StoppingCriterion(tolerance=1e-3, consecutive=2)
        s = c.new_state()
        s.observe(1e-4)
        assert not s.observe(1.0)
        assert s.streak == 0

    def test_observe_diff(self):
        s = StoppingCriterion(tolerance=0.5).new_state()
        assert s.observe_diff(np.array([1.0, 2.0]), np.array([1.2, 2.1]))

    def test_validation(self):
        with pytest.raises(ValueError):
            StoppingCriterion(tolerance=0.0)
        with pytest.raises(ValueError):
            StoppingCriterion(metric="energy")
        with pytest.raises(ValueError):
            StoppingCriterion(consecutive=0)
        with pytest.raises(ValueError):
            StoppingCriterion(max_iterations=0)


class TestPreconditioning:
    def test_jacobi_scaling_preserves_solution(self):
        A = diagonally_dominant(60, seed=3)
        b, x_true = rhs_for_solution(A, seed=4)
        A2, b2, recover = jacobi_preconditioner(A, b)
        s = MultisplittingSolver(3, mode="sequential")
        r = s.solve(A2, b2)
        np.testing.assert_allclose(recover(r.x), x_true, atol=1e-6)

    def test_jacobi_unit_diagonal(self):
        A = diagonally_dominant(30, seed=5)
        A2, _, _ = jacobi_preconditioner(A, np.ones(30))
        np.testing.assert_allclose(A2.diagonal(), 1.0)

    def test_jacobi_rejects_zero_diagonal(self):
        A = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(ZeroDivisionError):
            jacobi_preconditioner(A, np.ones(2))

    def test_row_equilibrate_preserves_solution_and_dominance(self):
        A = diagonally_dominant(50, seed=6)
        b, x_true = rhs_for_solution(A, seed=7)
        A2, b2, recover = row_equilibrate(A, b)
        assert is_strictly_diagonally_dominant(A2)
        s = MultisplittingSolver(2, mode="sequential")
        np.testing.assert_allclose(recover(s.solve(A2, b2).x), x_true, atol=1e-6)

    def test_equilibrate_rejects_empty_row(self):
        A = sp.csr_matrix((2, 2))
        with pytest.raises(ZeroDivisionError):
            row_equilibrate(A, np.zeros(2))

    def test_scaling_helps_badly_scaled_system(self):
        """Rows of wildly different magnitude: equilibration evens them out."""
        base = poisson_1d(40).toarray()
        scale = np.logspace(0, 8, 40)
        A = sp.csr_matrix(scale[:, None] * base)
        b = A @ np.ones(40)
        A2, b2, _ = row_equilibrate(A, b)
        rownorms = np.asarray(np.abs(A2).sum(axis=1)).ravel()
        assert rownorms.max() / rownorms.min() < 1.0 + 1e-9


class TestNewtonMultisplitting:
    def _nonlinear_problem(self, n=40):
        """Discretised u'' = u^3 + f with manufactured solution."""
        L = poisson_1d(n)
        u_star = np.sin(np.linspace(0, np.pi, n))
        f = L @ u_star + u_star**3

        def F(u):
            return L @ u + u**3 - f

        def J(u):
            return L + sp.diags(3.0 * u**2)

        return F, J, u_star

    def test_converges_to_manufactured_solution(self):
        F, J, u_star = self._nonlinear_problem()
        res = newton_multisplitting(F, J, np.zeros(40), processors=4)
        assert res.converged
        np.testing.assert_allclose(res.x, u_star, atol=1e-6)

    def test_quadratic_tail(self):
        F, J, _ = self._nonlinear_problem()
        res = newton_multisplitting(F, J, np.zeros(40), processors=2)
        h = res.residual_history
        assert h[-1] < 1e-8
        assert len(h) < 12  # Newton converges in a handful of steps

    def test_inner_iterations_accumulated(self):
        F, J, _ = self._nonlinear_problem()
        res = newton_multisplitting(F, J, np.zeros(40), processors=4)
        assert res.inner_iterations > res.newton_iterations

    def test_overlap_supported(self):
        F, J, u_star = self._nonlinear_problem()
        res = newton_multisplitting(F, J, np.zeros(40), processors=4, overlap=4)
        assert res.converged
        np.testing.assert_allclose(res.x, u_star, atol=1e-6)

    def test_nonconvergence_reported(self):
        def F(x):
            return x**2 + 1.0  # no real root

        def J(x):
            return np.diag(2.0 * x + 1e-3)

        res = newton_multisplitting(F, J, np.ones(4), processors=2, max_newton=5)
        assert not res.converged
