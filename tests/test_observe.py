"""Tests for :mod:`repro.observe` -- tracing, metrics, exports, wiring.

The contract under test is strictly observational instrumentation:

* tracing never changes the numbers (bit-identical iterates on every
  backend, traced vs untraced);
* inline tracing overhead stays under the 5% wall-clock budget;
* the injected-fault span counts are deterministic under a seeded
  chaos schedule;
* the Chrome ``trace_event`` export passes its own schema gate, and the
  gate actually rejects malformed traces;
* a traced 4-worker socket solve yields a merged timeline with
  compute/wire/wait spans from *every* worker lane on one clock.
"""

from __future__ import annotations

import importlib.util
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import make_weighting, multisplitting_iterate, uniform_bands
from repro.core.solver import MultisplittingSolver
from repro.core.stopping import StoppingCriterion
from repro.direct import FactorizationCache, get_solver
from repro.matrices import diagonally_dominant, rhs_for_solution
from repro.observe import (
    MetricsRegistry,
    Span,
    Tracer,
    chrome_trace,
    estimate_clock_offset,
    render_metrics,
    resolve_trace,
    round_timeline,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.runtime import ChaosExecutor, FaultInjector, get_executor

BACKENDS = ("inline", "threads", "processes", "sockets")

_KWARGS = {
    "inline": {},
    "threads": {"max_workers": 2},
    "processes": {"max_workers": 2},
    "sockets": {"workers": 2},
}


def _problem(n=96, L=4, seed=5):
    A = diagonally_dominant(n, dominance=1.5, bandwidth=4, seed=seed)
    b, _ = rhs_for_solution(A, seed=seed + 1)
    part = uniform_bands(n, L).to_general()
    scheme = make_weighting("ownership", part)
    return A, b, part, scheme


def _solve(executor=None, trace=None, stopping=None, cache=None, **problem_kw):
    A, b, part, scheme = _problem(**problem_kw)
    stopping = stopping or StoppingCriterion(tolerance=1e-10, max_iterations=50)
    return multisplitting_iterate(
        A, b, part, scheme, get_solver("scipy"),
        stopping=stopping, executor=executor, cache=cache, trace=trace,
    )


# ---------------------------------------------------------------------------
# Tracer primitives
# ---------------------------------------------------------------------------


class TestTracer:
    def test_add_event_span_and_counts(self):
        tr = Tracer()
        tr.add("solve", "compute", 1.0, 0.5, lane="block-0", block=0)
        tr.event("cache.hit", cat="cache", lane="worker-1", block=1)
        with tr.span("round", "round", round=0):
            pass
        counts = tr.counts()
        assert counts == {"solve": 1, "cache.hit": 1, "round": 1}
        spans = tr.spans()
        assert spans == sorted(spans, key=lambda s: (s.t0, s.lane, s.name))
        solve = next(s for s in spans if s.name == "solve")
        assert solve.args == {"block": 0}
        assert solve.t1() == pytest.approx(1.5)

    def test_ring_buffer_bounds_memory(self):
        tr = Tracer(capacity=10)
        for i in range(25):
            tr.event("tick", i=i)
        assert len(tr) == 10
        assert tr.recorded == 25
        assert tr.dropped == 15
        # oldest spans fell off; newest survived
        assert [s.args["i"] for s in tr.spans()] == list(range(15, 25))

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_export_batch_drains_and_ingest_shifts_clock(self):
        worker = Tracer()
        worker.add("solve", "compute", 100.0, 0.25, lane="worker-0", block=2)
        batch = worker.export_batch()
        assert len(worker) == 0
        assert batch == [("solve", "compute", 100.0, 0.25, "worker-0", {"block": 2})]

        driver = Tracer()
        n = driver.ingest(batch, clock_offset=90.0)
        assert n == 1
        (span,) = driver.spans()
        assert span.t0 == pytest.approx(10.0)
        assert span.dur == pytest.approx(0.25)
        assert span.lane == "worker-0"
        assert span.args == {"block": 2}

    def test_estimate_clock_offset_midpoint(self):
        # worker clock reads 1000.0 at driver midpoint (5.0 + 5.2) / 2
        off = estimate_clock_offset(5.0, 1000.0, 5.2)
        assert off == pytest.approx(1000.0 - 5.1)

    def test_resolve_trace(self):
        assert resolve_trace(None) is None
        assert resolve_trace(False) is None
        assert isinstance(resolve_trace(True), Tracer)
        tr = Tracer()
        assert resolve_trace(tr) is tr
        with pytest.raises(TypeError):
            resolve_trace("yes")


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


def _sample_spans():
    return [
        Span("round", "round", 0.0, 1.0, "driver", {"round": 0}),
        Span("solve", "compute", 0.1, 0.4, "worker-0", {"block": 0}),
        Span("wire.send", "wire", 0.5, 0.01, "worker-1", {"bytes": 2048}),
        Span("barrier.wait", "wait", 0.6, 0.2, "driver", {}),
        Span("cache.hit", "cache", 0.7, 0.0, "worker-0", {"block": 0}),
    ]


class TestExports:
    def test_chrome_trace_valid_and_lane_per_worker(self, tmp_path):
        path = tmp_path / "trace.json"
        obj = write_chrome_trace(_sample_spans(), path)
        validate_chrome_trace(obj)
        reloaded = json.loads(path.read_text())
        validate_chrome_trace(reloaded)
        names = {
            ev["args"]["name"]
            for ev in reloaded["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        assert names == {"driver", "worker-0", "worker-1"}
        # complete events for durations, instants for point events
        phases = {ev["name"]: ev["ph"] for ev in reloaded["traceEvents"] if ev["ph"] != "M"}
        assert phases["solve"] == "X"
        assert phases["cache.hit"] == "i"
        # timestamps rebased to start at 0, microsecond integers
        assert min(ev["ts"] for ev in reloaded["traceEvents"] if "ts" in ev) == 0

    @pytest.mark.parametrize(
        "bad",
        [
            [],  # not a dict
            {"events": []},  # wrong key
            {"traceEvents": {}},  # not a list
            {"traceEvents": [{"ph": "Q", "name": "x", "pid": 0, "tid": 0}]},
            {"traceEvents": [{"ph": "X", "pid": 0, "tid": 0}]},  # no name
            {  # float timestamp
                "traceEvents": [
                    {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 1.5, "dur": 1}
                ]
            },
            {  # lane without thread_name metadata
                "traceEvents": [
                    {"ph": "X", "name": "x", "pid": 0, "tid": 7, "ts": 0, "dur": 1}
                ]
            },
        ],
    )
    def test_validate_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            validate_chrome_trace(bad)

    def test_write_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        n = write_jsonl(_sample_spans(), path)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) == n == 5
        assert rows[1]["name"] == "solve"
        assert rows[2]["args"]["bytes"] == 2048

    def test_round_timeline_rollup(self):
        text = round_timeline(_sample_spans())
        lines = text.splitlines()
        assert len(lines) == 2  # header + one round
        assert "round" in lines[0]
        # compute 400ms, wire 10ms / 2 KiB, wait 200ms inside the round
        assert "400.00" in lines[1]
        assert "2.0" in lines[1]
        assert "200.00" in lines[1]

    def test_round_timeline_empty(self):
        assert round_timeline([]) == "(no round spans recorded)"


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_and_view(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_depth")
        g.set(4)
        assert g.value == 4.0
        state = {"n": 7}
        view = reg.gauge("repro_live", fn=lambda: state["n"])
        assert view.value == 7.0
        state["n"] = 9
        assert view.value == 9.0  # re-read at scrape time
        with pytest.raises(RuntimeError):
            view.set(1)

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_lat_seconds", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        text = reg.render()
        assert 'repro_lat_seconds_bucket{le="0.01"} 1' in text
        assert 'repro_lat_seconds_bucket{le="0.1"} 2' in text
        assert 'repro_lat_seconds_bucket{le="1.0"} 3' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 4' in text
        assert "repro_lat_seconds_count 4" in text

    def test_get_or_create_same_identity_and_kind_conflict(self):
        reg = MetricsRegistry()
        assert reg.counter("repro_x_total") is reg.counter("repro_x_total")
        with pytest.raises(TypeError):
            reg.gauge("repro_x_total")

    def test_render_format(self):
        reg = MetricsRegistry()
        reg.counter("repro_runs_total", help="runs").inc(3)
        reg.counter("repro_runs_by_backend_total", labels={"backend": "inline"}).inc()
        text = render_metrics(reg)
        assert "# HELP repro_runs_total runs" in text
        assert "# TYPE repro_runs_total counter" in text
        assert "repro_runs_total 3" in text
        assert 'repro_runs_by_backend_total{backend="inline"} 1' in text
        assert text.endswith("\n")

    def test_ingest_spans(self):
        reg = MetricsRegistry()
        reg.ingest_spans(_sample_spans())
        text = reg.render()
        assert 'repro_spans_total{name="solve"} 1' in text
        assert 'repro_span_seconds_count{cat="compute"} 1' in text

    def test_ingest_result_unifies_run_stats(self):
        result = _solve(trace=True, cache=FactorizationCache())
        reg = MetricsRegistry()
        reg.ingest_result(result)
        reg.ingest_spans(result.trace.spans())
        text = reg.render()
        assert "repro_solve_runs_total 1" in text
        assert "repro_solve_iterations_total" in text
        assert "repro_cache_misses_total" in text
        assert 'repro_spans_total{name="round"}' in text


# ---------------------------------------------------------------------------
# tracing is observational: bit-identical iterates, bounded overhead
# ---------------------------------------------------------------------------


class TestTracingIsObservational:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bit_identical_with_tracing(self, backend):
        stopping = StoppingCriterion(tolerance=1e-300, max_iterations=12)
        with get_executor(backend, **_KWARGS[backend]) as ex:
            plain = _solve(executor=ex, stopping=stopping)
        tracer = Tracer()
        with get_executor(backend, **_KWARGS[backend]) as ex:
            traced = _solve(executor=ex, trace=tracer, stopping=stopping)
        np.testing.assert_array_equal(traced.x, plain.x)
        assert traced.iterations == plain.iterations
        assert plain.trace is None
        assert traced.trace is tracer
        counts = tracer.counts()
        assert counts.get("round") == 12
        assert counts.get("solve", 0) >= 12 * 4  # every block, every round

    def test_overhead_budget_inline(self):
        """Inline traced wall-clock stays within 5% of untraced (+ jitter floor)."""
        stopping = StoppingCriterion(tolerance=1e-300, max_iterations=40)

        def run(trace):
            t0 = time.perf_counter()
            _solve(trace=trace, stopping=stopping, n=600, L=4)
            return time.perf_counter() - t0

        run(None)  # warm caches/JIT paths
        plain = min(run(None) for _ in range(3))
        traced = min(run(Tracer()) for _ in range(3))
        # 5% budget plus a 5ms absolute floor against scheduler jitter on
        # loaded CI hosts (the relative bound is meaningless at sub-ms).
        assert traced <= plain * 1.05 + 0.005, (
            f"tracing overhead {traced / plain - 1:.1%} exceeds the 5% budget "
            f"(plain {plain:.4f}s, traced {traced:.4f}s)"
        )


# ---------------------------------------------------------------------------
# deterministic fault spans under seeded chaos
# ---------------------------------------------------------------------------


class TestChaosSpans:
    def test_seeded_chaos_span_counts_deterministic(self):
        stopping = StoppingCriterion(tolerance=1e-300, max_iterations=10)

        def run():
            tracer = Tracer()
            chaos = ChaosExecutor(
                get_executor("inline"),
                FaultInjector(seed=3, delay_rounds=(1, 4), drop_rounds=(2, 6),
                              delay_seconds=0.001),
            )
            with chaos:
                result = _solve(executor=chaos, trace=tracer, stopping=stopping)
            return result, tracer

        r1, t1 = run()
        r2, t2 = run()
        np.testing.assert_array_equal(r1.x, r2.x)
        # Only schedule-driven span names are compared: barrier waits and
        # heartbeats are timing-dependent and excluded by construction.
        deterministic = ("chaos.delay", "chaos.drop", "solve", "round")
        c1, c2 = t1.counts(), t2.counts()
        for name in deterministic:
            assert c1.get(name, 0) == c2.get(name, 0), name
        assert c1["chaos.delay"] == 2
        assert c1["chaos.drop"] == 2
        assert c1["round"] == 10


# ---------------------------------------------------------------------------
# wire accounting on results
# ---------------------------------------------------------------------------


class TestWireStats:
    def test_socket_wire_bytes_on_result(self):
        stopping = StoppingCriterion(tolerance=1e-300, max_iterations=8)
        with get_executor("sockets", workers=2) as ex:
            result = _solve(executor=ex, stopping=stopping)
        wire = result.wire
        attach = wire["attach_payload_bytes"]
        assert set(attach) == {0, 1}
        assert all(v > 0 for v in attach.values())
        # 8 rounds x 4 blocks of task frames out, reply frames back
        assert wire["vector_bytes_sent"] > 0
        assert wire["vector_bytes_received"] > 0

    def test_facade_surfaces_wire(self):
        A = diagonally_dominant(96, dominance=1.5, bandwidth=4, seed=5)
        b, _ = rhs_for_solution(A, seed=6)
        with get_executor("sockets", workers=2) as ex:
            # Sequential mode runs the real iteration on the backend; the
            # simulated modes only use the executor for setup, so they
            # report no per-round wire traffic.
            solver = MultisplittingSolver(mode="sequential", backend=ex)
            result = solver.solve(A, b)
        assert result.wire.get("vector_bytes_sent", 0) > 0
        assert result.wire.get("attach_payload_bytes")

    def test_inline_reports_empty_wire(self):
        result = _solve()
        assert result.wire.get("attach_payload_bytes", {}) == {}


# ---------------------------------------------------------------------------
# the acceptance scenario: 4 socket workers, one merged timeline
# ---------------------------------------------------------------------------


class TestSocketTimeline:
    def test_four_worker_merged_timeline_exports(self, tmp_path):
        stopping = StoppingCriterion(tolerance=1e-300, max_iterations=10)
        tracer = Tracer()
        with get_executor("sockets", workers=4) as ex:
            result = _solve(
                executor=ex, trace=tracer, stopping=stopping,
                cache=FactorizationCache(), n=128, L=4,
            )
        assert result.iterations == 10
        spans = tracer.spans()
        lanes = {s.lane for s in spans}
        assert {"driver", "worker-0", "worker-1", "worker-2", "worker-3"} <= lanes

        by_lane: dict[str, set] = {}
        for s in spans:
            by_lane.setdefault(s.lane, set()).add(s.name)
        for w in range(4):
            names = by_lane[f"worker-{w}"]
            # every worker shipped compute, wire, and wait spans
            assert "solve" in names
            assert "wire.recv" in names and "wire.send" in names
            assert "barrier.wait" in names
            # factorization shows up as a factor span or a cache miss
            assert "factor" in names or "cache.miss" in names

        # merged clock: worker spans interleave the driver's round window
        rounds = [s for s in spans if s.name == "round"]
        assert len(rounds) == 10
        t0, t1 = rounds[0].t0, rounds[-1].t1()
        worker_solves = [
            s for s in spans if s.name == "solve" and s.lane.startswith("worker-")
        ]
        inside = [s for s in worker_solves if t0 <= s.t0 <= t1]
        assert len(inside) >= 0.9 * len(worker_solves)

        # wire spans carry byte counts
        assert all(
            s.args.get("bytes", 0) > 0
            for s in spans if s.name in ("wire.send", "wire.recv")
        )

        path = tmp_path / "socket_trace.json"
        obj = write_chrome_trace(spans, path)
        validate_chrome_trace(obj)
        validate_chrome_trace(json.loads(path.read_text()))
        timeline = round_timeline(spans)
        assert timeline.count("\n") == 10  # header + 10 rounds


# ---------------------------------------------------------------------------
# serve gateway tracing + scrape
# ---------------------------------------------------------------------------


class TestServeObservability:
    def test_gateway_trace_and_metrics(self):
        import asyncio

        from repro.serve import ServeGateway, SolverPool

        A = diagonally_dominant(48, dominance=1.5, bandwidth=3, seed=2)
        pool = SolverPool(size=2, processors=2)
        try:
            tracer = Tracer()
            gw = ServeGateway(pool, window=0.01, max_batch=8, trace=tracer)
            key = gw.register(A)
            rng = np.random.default_rng(0)

            async def scenario():
                bs = rng.standard_normal((6, 48))
                xs = await asyncio.gather(*(gw.submit(key, b) for b in bs))
                await gw.drain()
                return xs

            xs = asyncio.run(scenario())
            assert len(xs) == 6
            counts = tracer.counts()
            assert counts["serve.admit"] == 6
            assert counts["serve.reply"] == 6
            assert counts.get("serve.batch", 0) >= 1
            batches = [s for s in tracer.spans() if s.name == "serve.batch"]
            assert sum(s.args["size"] for s in batches) == 6
            assert all(s.args["reason"] in ("window", "max_batch", "tick", "drain")
                       for s in batches)

            text = gw.render_metrics(wall_seconds=1.0)
            assert "repro_serve_pending 0" in text
            assert "repro_serve_completed 6" in text
            assert 'repro_spans_total{name="serve.admit"} 6' in text
        finally:
            pool.close()


# ---------------------------------------------------------------------------
# benchmark emission helper
# ---------------------------------------------------------------------------


class TestBenchOutput:
    def _load(self):
        path = Path(__file__).resolve().parent.parent / "benchmarks" / "bench_output.py"
        spec = importlib.util.spec_from_file_location("bench_output", path)
        mod = importlib.util.module_from_spec(spec)
        sys.modules.setdefault("bench_output", mod)
        spec.loader.exec_module(mod)
        return mod

    def test_emit_writes_schema(self, tmp_path, monkeypatch):
        mod = self._load()
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_BENCH_TIMESTAMP", "12345.5")
        path = mod.emit(
            "demo",
            [("sync_time", 0.5, "s"), {"name": "speedup", "value": 2, "units": "x"}],
            seed=7,
        )
        payload = json.loads(Path(path).read_text())
        assert Path(path).name == "BENCH_demo.json"
        assert payload["bench"] == "demo"
        assert payload["seed"] == 7
        assert payload["timestamp"] == 12345.5
        assert payload["metrics"] == [
            {"name": "sync_time", "value": 0.5, "units": "s"},
            {"name": "speedup", "value": 2.0, "units": "x"},
        ]
