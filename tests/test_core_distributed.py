"""Tests for the distributed solvers (sync + async) and the facade."""

import numpy as np
import pytest

from repro.core import (
    MultisplittingSolver,
    StoppingCriterion,
    communication_pattern,
    make_weighting,
    uniform_bands,
)
from repro.core.asynchronous import run_asynchronous
from repro.core.local import build_local_systems
from repro.core.sync import run_synchronous
from repro.direct import get_solver
from repro.matrices import diagonally_dominant, rhs_for_solution
from repro.grid import cluster1, cluster2, cluster3, custom_cluster

SCIPY = get_solver("scipy")


def problem(n=200, dominance=1.5, bandwidth=15, seed=1):
    A = diagonally_dominant(n, dominance=dominance, bandwidth=bandwidth, seed=seed)
    b, x_true = rhs_for_solution(A, seed=seed + 1)
    return A, b, x_true


class TestCommunicationPattern:
    def test_ownership_minimal_neighbours(self):
        A, b, _ = problem(n=120, bandwidth=8)
        part = uniform_bands(120, 4).to_general()
        w = make_weighting("ownership", part)
        systems = build_local_systems(A, b, part.sets, SCIPY)
        pat = communication_pattern(part, w, systems)
        assert pat.deps[0] == [1]
        assert 0 in pat.deps[1] and 2 in pat.deps[1]

    def test_averaging_includes_both_overlap_owners(self):
        A, b, _ = problem(n=120, bandwidth=8)
        part = uniform_bands(120, 4, overlap=10).to_general()
        w_own = make_weighting("ownership", part)
        w_avg = make_weighting("averaging", part)
        systems = build_local_systems(A, b, part.sets, SCIPY)
        pat_own = communication_pattern(part, w_own, systems)
        pat_avg = communication_pattern(part, w_avg, systems)
        total_own = sum(len(d) for d in pat_own.deps)
        total_avg = sum(len(d) for d in pat_avg.deps)
        assert total_avg >= total_own

    def test_terms_cover_needed_columns(self):
        A, b, _ = problem(n=100, bandwidth=6)
        part = uniform_bands(100, 5).to_general()
        w = make_weighting("ownership", part)
        systems = build_local_systems(A, b, part.sets, SCIPY)
        pat = communication_pattern(part, w, systems)
        for l in range(5):
            covered = np.concatenate(
                [t[1] for t in pat.recv_terms[l].values()]
            ) if pat.recv_terms[l] else np.array([], dtype=int)
            np.testing.assert_array_equal(
                np.sort(np.unique(covered)), pat.needed_cols[l]
            )


class TestSynchronous:
    @pytest.mark.parametrize("detection", ["centralized", "decentralized"])
    def test_converges_on_lan(self, detection):
        A, b, x_true = problem()
        part = uniform_bands(200, 6).to_general()
        w = make_weighting("ownership", part)
        res = run_synchronous(A, b, part, w, SCIPY, cluster1(6), detection=detection)
        assert res.status == "ok"
        assert res.residual < 1e-7
        np.testing.assert_allclose(res.x, x_true, atol=1e-6)

    def test_same_iterates_as_sequential(self):
        """The distributed algorithm computes exactly the reference iterates."""
        from repro.core import multisplitting_iterate

        A, b, _ = problem(n=150)
        part = uniform_bands(150, 5).to_general()
        w = make_weighting("ownership", part)
        seq = multisplitting_iterate(A, b, part, w, SCIPY)
        dist = run_synchronous(A, b, part, w, SCIPY, cluster1(5))
        assert dist.iterations == seq.iterations
        np.testing.assert_allclose(dist.x, seq.x, atol=1e-12)

    def test_all_ranks_same_iteration_count(self):
        A, b, _ = problem()
        part = uniform_bands(200, 4).to_general()
        w = make_weighting("ownership", part)
        res = run_synchronous(A, b, part, w, SCIPY, cluster1(4))
        assert len(set(res.per_proc_iterations)) == 1

    def test_max_iterations_status(self):
        A, b, _ = problem(dominance=1.02)
        part = uniform_bands(200, 4).to_general()
        w = make_weighting("ownership", part)
        res = run_synchronous(
            A, b, part, w, SCIPY, cluster1(4),
            stopping=StoppingCriterion(max_iterations=3),
        )
        assert res.status == "max-iterations"
        assert not res.converged

    def test_nem_on_tiny_memory(self):
        A, b, _ = problem(n=400)
        part = uniform_bands(400, 4).to_general()
        w = make_weighting("ownership", part)
        tiny = cluster1(4, memory_scale=1e-6)
        res = run_synchronous(A, b, part, w, SCIPY, tiny)
        assert res.status == "nem"
        assert res.x is None
        assert np.isnan(res.residual)

    def test_needs_enough_hosts(self):
        A, b, _ = problem(n=100)
        part = uniform_bands(100, 8).to_general()
        w = make_weighting("ownership", part)
        with pytest.raises(ValueError):
            run_synchronous(A, b, part, w, SCIPY, cluster1(4))

    def test_stats_collected(self):
        A, b, _ = problem()
        part = uniform_bands(200, 4).to_general()
        w = make_weighting("ownership", part)
        res = run_synchronous(A, b, part, w, SCIPY, cluster1(4))
        assert res.stats is not None
        assert res.stats.messages > 0
        assert res.stats.total_compute_time > 0
        assert res.factorization_time <= res.simulated_time

    def test_wan_slower_than_lan(self):
        A, b, _ = problem()
        part = uniform_bands(200, 6).to_general()
        w = make_weighting("ownership", part)
        lan = run_synchronous(A, b, part, w, SCIPY, cluster1(6))
        wan = run_synchronous(A, b, part, w, SCIPY, cluster3(6))
        assert wan.simulated_time > lan.simulated_time


class TestAsynchronous:
    @pytest.mark.parametrize("detection", ["centralized", "decentralized"])
    def test_converges_on_wan(self, detection):
        A, b, x_true = problem(dominance=2.0)
        part = uniform_bands(200, 6).to_general()
        w = make_weighting("ownership", part)
        res = run_asynchronous(A, b, part, w, SCIPY, cluster3(6), detection=detection)
        assert res.status == "ok"
        assert res.residual < 1e-6
        np.testing.assert_allclose(res.x, x_true, atol=1e-5)

    def test_iteration_counts_differ_per_rank(self):
        """Paper: asynchronous counts 'widely differ from one processor to another'."""
        A, b, _ = problem(dominance=1.5)
        part = uniform_bands(200, 6).to_general()
        w = make_weighting("ownership", part)
        res = run_asynchronous(A, b, part, w, SCIPY, cluster3(6))
        assert len(set(res.per_proc_iterations)) > 1

    def test_more_iterations_than_sync(self):
        A, b, _ = problem(dominance=1.5)
        part = uniform_bands(200, 6).to_general()
        w = make_weighting("ownership", part)
        sync = run_synchronous(A, b, part, w, SCIPY, cluster3(6))
        asy = run_asynchronous(A, b, part, w, SCIPY, cluster3(6))
        assert asy.iterations > sync.iterations

    def test_nem_precheck(self):
        A, b, _ = problem(n=400)
        part = uniform_bands(400, 4).to_general()
        w = make_weighting("ownership", part)
        res = run_asynchronous(A, b, part, w, SCIPY, cluster1(4, memory_scale=1e-6))
        assert res.status == "nem"

    def test_detection_messages_counted(self):
        A, b, _ = problem()
        part = uniform_bands(200, 4).to_general()
        w = make_weighting("ownership", part)
        res = run_asynchronous(A, b, part, w, SCIPY, cluster1(4))
        assert res.detection_messages > 0


class TestFacade:
    def test_sequential_mode(self):
        A, b, x_true = problem()
        s = MultisplittingSolver(4, mode="sequential")
        r = s.solve(A, b)
        assert r.converged and r.simulated_time is None
        np.testing.assert_allclose(r.x, x_true, atol=1e-6)

    def test_synchronous_default_cluster(self):
        A, b, _ = problem()
        s = MultisplittingSolver(4, mode="synchronous")
        r = s.solve(A, b)
        assert r.status == "ok"
        assert r.simulated_time > 0

    def test_asynchronous_mode(self):
        A, b, x_true = problem(dominance=2.0)
        s = MultisplittingSolver(mode="asynchronous")
        r = s.solve(A, b, cluster=cluster2(6))
        assert r.status == "ok"
        assert r.error_vs(x_true) < 1e-5

    def test_proportional_bands_on_heterogeneous_cluster(self):
        A, b, _ = problem(n=300)
        c = custom_cluster("het", {"s": [1e8, 4e8]})
        s = MultisplittingSolver(mode="synchronous", proportional=True)
        part = s.build_partition(300, c, 2)
        sizes = [c_.size for c_ in part.core]
        assert sizes[1] > sizes[0]

    def test_overlap_and_weighting_forwarded(self):
        A, b, x_true = problem(dominance=1.1)
        s = MultisplittingSolver(
            4, mode="sequential", overlap=15, weighting="averaging"
        )
        r = s.solve(A, b)
        assert r.converged
        np.testing.assert_allclose(r.x, x_true, atol=1e-5)

    def test_explicit_partition_accepted(self):
        A, b, _ = problem(n=100)
        s = MultisplittingSolver(mode="sequential")
        part = uniform_bands(100, 2, overlap=5)
        r = s.solve(A, b, partition=part)
        assert r.nprocs == 2 and r.converged

    def test_error_vs_nan_when_nem(self):
        A, b, x_true = problem(n=400)
        s = MultisplittingSolver(4, mode="synchronous")
        r = s.solve(A, b, cluster=cluster1(4, memory_scale=1e-6))
        assert r.status == "nem"
        assert np.isnan(r.error_vs(x_true))

    def test_invalid_options(self):
        with pytest.raises(ValueError):
            MultisplittingSolver(mode="magic")
        with pytest.raises(ValueError):
            MultisplittingSolver(0)
        with pytest.raises(ValueError):
            MultisplittingSolver(overlap=-1)

    def test_direct_solver_instance_accepted(self):
        A, b, _ = problem(n=80)
        s = MultisplittingSolver(2, mode="sequential", direct_solver=get_solver("dense"))
        assert s.solve(A, b).converged
