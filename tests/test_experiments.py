"""Tests for the experiment harness (small scales for speed)."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    TABLE1,
    TABLE2,
    TABLE3,
    TABLE4,
    ShapeViolation,
    check_figure3_shape,
    check_scalability_shape,
    check_table4_shape,
    format_table,
    paper_speedup,
    run_experiment,
    table1,
    table4,
    figure3,
)
from repro.experiments.tables import ExperimentResult


class TestPaperData:
    def test_tables_transcribed(self):
        assert TABLE1[2][0] == 89.27
        assert TABLE1[20] == (45.99, 0.14, 1.84, 0.06)
        assert TABLE2[4][0] == 1496.28
        assert TABLE3[("cage12", "cluster3")][0] == "nem"
        assert TABLE4[10] == (22600.0, 99.35, 44.13)

    def test_paper_speedup(self):
        assert paper_speedup(TABLE1, 20) == pytest.approx(45.99 / 0.14)
        with pytest.raises(ValueError):
            paper_speedup(TABLE1, 1)  # no multisplitting entry

    def test_paper_async_beats_sync_under_perturbation(self):
        for k in (1, 5, 10):
            _, sync, asyn = TABLE4[k]
            assert asyn < sync


class TestRunners:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {"table1", "table2", "table3", "table4", "figure3"}

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("table9")

    def test_table1_small(self):
        r = table1(scale=0.25, procs_list=[1, 2, 4])
        assert [row["processors"] for row in r.rows] == [1, 2, 4]
        assert r.rows[0]["sync multisplitting-LU"] is None  # paper leaves blank
        row4 = r.rows[-1]
        assert isinstance(row4["distributed SuperLU"], float)
        assert isinstance(row4["sync multisplitting-LU"], float)
        assert row4["residual sync"] < 1e-7
        # multisplitting far faster than the baseline, as in the paper
        assert row4["distributed SuperLU"] > 2 * row4["sync multisplitting-LU"]

    def test_table4_small_shape(self):
        r = table4(scale=0.2, perturbations=[0, 5])
        check_table4_shape(r)
        t0 = r.rows[0]
        t5 = r.rows[1]
        assert t5["sync multisplitting-LU"] > t0["sync multisplitting-LU"]

    def test_figure3_small_shape(self):
        r = figure3(scale=0.2, overlaps=[0, 8, 20, 40])
        check_figure3_shape(r)
        iters = [row["sync iterations"] for row in r.rows]
        assert iters == sorted(iters, reverse=True)  # monotone fall
        assert all(row["residual sync"] < 1e-6 for row in r.rows)


class TestReport:
    def _dummy(self):
        return ExperimentResult(
            experiment="dummy",
            columns=["processors", "distributed SuperLU", "sync multisplitting-LU", "factorization time"],
            rows=[
                {"processors": 2, "distributed SuperLU": 100.0, "sync multisplitting-LU": 5.0, "factorization time": 4.0},
                {"processors": 4, "distributed SuperLU": 50.0, "sync multisplitting-LU": 2.0, "factorization time": 1.5},
                {"processors": 8, "distributed SuperLU": 40.0, "sync multisplitting-LU": 1.0, "factorization time": 0.5},
            ],
        )

    def test_format_table_renders(self):
        text = format_table(self._dummy(), title="Table X")
        assert "Table X" in text
        assert "processors" in text
        assert "100" in text

    def test_format_handles_nem_and_none(self):
        res = self._dummy()
        res.rows[0]["distributed SuperLU"] = "nem"
        res.rows[1]["sync multisplitting-LU"] = None
        text = format_table(res)
        assert "nem" in text
        assert "-" in text

    def test_scalability_check_passes(self):
        check_scalability_shape(self._dummy())

    def test_scalability_check_catches_slow_multisplitting(self):
        res = self._dummy()
        res.rows[0]["sync multisplitting-LU"] = 90.0
        with pytest.raises(ShapeViolation):
            check_scalability_shape(res)

    def test_scalability_check_catches_non_scaling(self):
        res = self._dummy()
        for row in res.rows:
            row["sync multisplitting-LU"] = 5.0
            row["factorization time"] = 1.0
        with pytest.raises(ShapeViolation):
            check_scalability_shape(res)


class TestCli:
    def test_cli_runs_table4(self, capsys):
        from repro.experiments.cli import main

        status = main(["table4", "--scale", "0.15"])
        out = capsys.readouterr().out
        assert status == 0
        assert "Table 4" in out

    def test_cli_rejects_unknown(self):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["table7"])
