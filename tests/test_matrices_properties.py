"""Tests for Section-5 matrix class predicates (repro.matrices.properties)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matrices import (
    diagonal_dominance_margin,
    diagonally_dominant,
    is_irreducible,
    is_irreducibly_diagonally_dominant,
    is_m_matrix,
    is_strictly_diagonally_dominant,
    is_weakly_diagonally_dominant,
    is_z_matrix,
    jacobi_matrix,
    jacobi_spectral_radius,
    poisson_1d,
    poisson_2d,
)


class TestDominance:
    def test_margin_strict(self):
        A = np.array([[3.0, -1.0], [1.0, 2.0]])
        assert diagonal_dominance_margin(A) == pytest.approx(1.0)

    def test_strict_and_weak(self):
        strict = np.array([[3.0, -1.0], [0.5, 2.0]])
        weak = np.array([[1.0, -1.0], [0.5, 2.0]])
        bad = np.array([[0.5, -1.0], [0.5, 2.0]])
        assert is_strictly_diagonally_dominant(strict)
        assert not is_strictly_diagonally_dominant(weak)
        assert is_weakly_diagonally_dominant(weak)
        assert not is_weakly_diagonally_dominant(bad)

    def test_poisson_is_irreducibly_dominant_not_strict(self):
        A = poisson_1d(10)
        assert not is_strictly_diagonally_dominant(A)
        assert is_irreducibly_diagonally_dominant(A)

    def test_reducible_matrix_detected(self):
        A = sp.block_diag([poisson_1d(3), poisson_1d(3)]).tocsr()
        assert not is_irreducible(A)
        assert not is_irreducibly_diagonally_dominant(A)

    def test_irreducible_chain(self):
        assert is_irreducible(poisson_1d(6))


class TestZAndM:
    def test_poisson_is_m_matrix(self):
        assert is_z_matrix(poisson_2d(4))
        assert is_m_matrix(poisson_2d(4))

    def test_positive_offdiag_not_z(self):
        A = np.array([[2.0, 0.5], [-0.5, 2.0]])
        assert not is_z_matrix(A)

    def test_singular_m_candidate_rejected(self):
        # Weakly dominant Z-matrix with zero row sums everywhere: singular.
        A = np.array([[1.0, -1.0], [-1.0, 1.0]])
        assert is_z_matrix(A)
        assert not is_m_matrix(A)

    def test_negative_diagonal_not_m(self):
        A = np.array([[-2.0, -1.0], [-1.0, -2.0]])
        assert is_z_matrix(A)
        assert not is_m_matrix(A)

    def test_generated_m_matrix(self):
        A = diagonally_dominant(60, negative_off_diagonals=True, seed=11)
        assert is_m_matrix(A)


class TestJacobi:
    def test_jacobi_matrix_explicit(self):
        A = np.array([[2.0, -1.0], [-1.0, 2.0]])
        J = jacobi_matrix(A).toarray()
        np.testing.assert_allclose(J, [[0.0, 0.5], [0.5, 0.0]])

    def test_jacobi_zero_diagonal_raises(self):
        with pytest.raises(ZeroDivisionError):
            jacobi_matrix(np.array([[0.0, 1.0], [1.0, 1.0]]))

    def test_proposition1_dominant_implies_radius_below_one(self):
        """Proposition 1: strict dominance => rho(|J|) < 1."""
        A = diagonally_dominant(80, dominance=1.5, seed=2)
        assert jacobi_spectral_radius(A, absolute=True) < 1.0

    def test_plain_vs_absolute_radius(self):
        A = poisson_1d(8)
        rho_abs = jacobi_spectral_radius(A, absolute=True)
        rho = jacobi_spectral_radius(A, absolute=False)
        assert rho <= rho_abs + 1e-12

    @settings(max_examples=15, deadline=None)
    @given(st.integers(4, 40), st.floats(1.1, 3.0))
    def test_property_dominance_jacobi_bound(self, n, dom):
        """rho(|J|) <= 1/dominance for the generated family."""
        A = diagonally_dominant(n, dominance=dom, seed=1)
        assert jacobi_spectral_radius(A) <= 1.0 / dom + 1e-8
