"""Property-based and unit tests for the factorization-reuse subsystem."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.direct import (
    FactorizationCache,
    get_solver,
    matrix_fingerprint,
    solver_fingerprint,
)
from repro.matrices import diagonally_dominant, poisson_2d, rhs_for_solution

KERNELS = ["dense", "banded", "sparse", "scipy"]


def random_spd(n: int, seed: int) -> np.ndarray:
    """Random SPD matrix (well conditioned via a diagonal shift)."""
    rng = np.random.default_rng(seed)
    G = rng.standard_normal((n, n))
    return G @ G.T + n * np.eye(n)


class TestCacheProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(4, 24),
        seed=st.integers(0, 10_000),
        kernel=st.sampled_from(KERNELS),
    )
    def test_cached_resolve_matches_fresh_factor(self, n, seed, kernel):
        """A cached re-solve equals a fresh factor-and-solve to machine precision."""
        A = diagonally_dominant(n, dominance=1.5, bandwidth=max(2, n // 4), seed=seed)
        b, _ = rhs_for_solution(A, seed=seed + 1)
        solver = get_solver(kernel)
        cache = FactorizationCache()
        cache.factor(solver, A)  # miss: populates the entry
        x_cached = cache.factor(solver, A).solve(b)  # hit: reused factors
        x_fresh = solver.factor(A).solve(b)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        np.testing.assert_array_equal(x_cached, x_fresh)

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(4, 20), seed=st.integers(0, 10_000))
    def test_spd_cached_resolve_exact(self, n, seed):
        """Same property on random SPD matrices through the dense kernel."""
        A = random_spd(n, seed)
        b = np.random.default_rng(seed + 1).standard_normal(n)
        solver = get_solver("dense")
        cache = FactorizationCache()
        x_cached = cache.factor(solver, A).solve(b)
        again = cache.factor(solver, A).solve(b)
        np.testing.assert_array_equal(x_cached, again)
        np.testing.assert_array_equal(x_cached, solver.factor(A).solve(b))

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(4, 20),
        seed=st.integers(0, 10_000),
        i=st.integers(0, 19),
        bump=st.floats(0.5, 3.0),
    )
    def test_mutation_invalidates_entry(self, n, seed, i, bump):
        """Mutating the matrix changes the key: the stale entry is unreachable."""
        i = i % n
        A = random_spd(n, seed)
        solver = get_solver("dense")
        cache = FactorizationCache()
        key_before = cache.key_for(solver, A)
        cache.factor(solver, A, key=key_before)
        A[i, i] += bump  # in-place mutation
        key_after = cache.key_for(solver, A)
        assert key_after != key_before
        fact = cache.factor(solver, A)  # must be a fresh factorization
        assert cache.stats.misses == 2
        b = np.random.default_rng(seed + 2).standard_normal(n)
        np.testing.assert_allclose(A @ fact.solve(b), b, atol=1e-8 * n)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_sparse_mutation_detected(self, seed):
        """Value and structure mutations of sparse matrices both change the key."""
        A = diagonally_dominant(12, dominance=2.0, bandwidth=3, seed=seed).tocsr()
        solver = get_solver("scipy")
        cache = FactorizationCache()
        k0 = cache.key_for(solver, A)
        A.data[0] *= 1.5  # value mutation, same structure
        k1 = cache.key_for(solver, A)
        assert k1 != k0
        B = A.tolil()
        B[0, A.shape[0] - 1] = 0.125  # structural mutation
        k2 = cache.key_for(solver, B.tocsr())
        assert k2 != k1


class TestCacheMechanics:
    def test_hit_returns_same_handle(self):
        A = poisson_2d(5)
        solver = get_solver("scipy")
        cache = FactorizationCache()
        f1 = cache.factor(solver, A)
        f2 = cache.factor(solver, A)
        assert f1 is f2

    def test_solver_config_separates_entries(self):
        """Different kernel parameters must not share factorizations."""
        A = poisson_2d(4)
        s_rcm = get_solver("sparse", ordering="rcm")
        s_nat = get_solver("sparse", ordering="natural")
        assert solver_fingerprint(s_rcm) != solver_fingerprint(s_nat)
        cache = FactorizationCache()
        cache.factor(s_rcm, A)
        cache.factor(s_nat, A)
        assert cache.stats.misses == 2
        # same config, different instance: shares the entry
        cache.factor(get_solver("sparse", ordering="rcm"), A)
        assert cache.stats.hits == 1

    def test_dense_and_sparse_content_share_nothing(self):
        A = poisson_2d(4)
        assert matrix_fingerprint(A) != matrix_fingerprint(A.toarray())

    def test_lru_eviction(self):
        solver = get_solver("dense")
        cache = FactorizationCache(capacity=2)
        mats = [random_spd(6, s) for s in range(3)]
        keys = [cache.key_for(solver, M) for M in mats]
        for M, k in zip(mats, keys):
            cache.factor(solver, M, key=k)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert not cache.contains(keys[0])  # oldest evicted
        assert cache.contains(keys[1]) and cache.contains(keys[2])
        # evicted entry transparently re-factors (a new miss)
        cache.factor(solver, mats[0], key=keys[0])
        assert cache.stats.misses == 4

    def test_invalidate_and_clear(self):
        solver = get_solver("dense")
        cache = FactorizationCache()
        A = random_spd(5, 0)
        key = cache.key_for(solver, A)
        cache.factor(solver, A, key=key)
        assert cache.invalidate(key)
        assert not cache.invalidate(key)  # already gone
        cache.factor(solver, A, key=key)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.invalidations == 2

    def test_stats_delta_and_rates(self):
        solver = get_solver("dense")
        cache = FactorizationCache()
        A = random_spd(5, 1)
        cache.factor(solver, A)
        before = cache.stats.snapshot()
        cache.factor(solver, A)
        delta = cache.stats.since(before)
        assert (delta.hits, delta.misses) == (1, 0)
        assert delta.hit_rate == 1.0
        assert cache.stats.lookups == 2
        assert cache.stats.factor_seconds_saved >= 0.0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FactorizationCache(capacity=0)

    def test_resize_shrink_fires_on_evict_outside_the_lock(self):
        """Regression: a re-entrant ``on_evict`` (one that consults the
        cache it was called from) must not deadlock -- the shrink path
        fires callbacks only after releasing the cache lock."""
        solver = get_solver("dense")
        observed: list[tuple] = []
        cache = FactorizationCache(
            # The callback re-enters the (non-reentrant) cache lock:
            # held-at-callback would deadlock here, not just misbehave.
            on_evict=lambda key: observed.append(
                (key, cache.contains(key), len(cache))
            )
        )
        mats = [random_spd(6, s) for s in range(4)]
        keys = [cache.key_for(solver, M) for M in mats]
        for M, k in zip(mats, keys):
            cache.factor(solver, M, key=k)
        dropped = cache.resize(2)
        assert dropped == 2
        assert [k for k, _, _ in observed] == keys[:2]  # LRU order
        # the entry was already gone and the table consistent in-callback
        assert all(not present and size == 2 for _, present, size in observed)
        assert cache.stats.evictions == 2

    def test_resize_none_unbounds_and_keeps_counters(self):
        solver = get_solver("dense")
        cache = FactorizationCache(capacity=2)
        mats = [random_spd(6, s) for s in range(3)]
        for M in mats:
            cache.factor(solver, M)
        assert cache.stats.evictions == 1
        assert cache.resize(None) == 0
        assert cache.capacity is None
        assert cache.stats.evictions == 1  # counters survive the unbound
        # genuinely unbounded again: re-admitting everything evicts nothing
        for M in mats:
            cache.factor(solver, M)
        assert len(cache) == 3
        assert cache.stats.evictions == 1
        with pytest.raises(ValueError):
            cache.resize(0)

    def test_factor_path_eviction_callback_is_reentrant_safe(self):
        """The admission-driven eviction (factor past capacity) uses the
        same outside-the-lock callback contract as resize."""
        solver = get_solver("dense")
        seen: list[int] = []
        cache = FactorizationCache(
            capacity=1, on_evict=lambda key: seen.append(len(cache))
        )
        cache.factor(solver, random_spd(6, 0))
        cache.factor(solver, random_spd(6, 1))  # evicts the first entry
        assert seen == [1]
        assert cache.stats.evictions == 1

    def test_dtype_distinguishes_sparse_fingerprints(self):
        """Byte-identical buffers under different dtypes must not collide."""
        data_i = np.array([1, 2], dtype=np.int64)
        Ai = sp.csr_matrix((data_i, np.array([0, 1]), np.array([0, 1, 2])), shape=(2, 2))
        Af = sp.csr_matrix(
            (data_i.view(np.float64).copy(), np.array([0, 1]), np.array([0, 1, 2])),
            shape=(2, 2),
        )
        assert matrix_fingerprint(Ai) != matrix_fingerprint(Af)

    def test_non_canonical_sparse_hashes_equal(self):
        """Duplicate-entry CSR equal to a canonical matrix shares its key."""
        dup = sp.csr_matrix(
            (np.array([1.0, 1.0, 2.0]), np.array([0, 0, 1]), np.array([0, 2, 3])),
            shape=(2, 2),
        )
        canon = sp.csr_matrix(np.array([[2.0, 0.0], [0.0, 2.0]]))
        assert matrix_fingerprint(dup) == matrix_fingerprint(canon)
        np.testing.assert_array_equal(dup.data, [1.0, 1.0, 2.0])  # caller untouched

    def test_nested_solver_configs_share_fingerprint(self):
        """Kernels holding kernels fingerprint by value, not by address."""
        from repro.direct.base import DirectSolver

        class Wrap(DirectSolver):
            name = "wrap-for-test"

            def __init__(self, inner):
                self.inner = inner

            def factor(self, A):
                return self.inner.factor(A)

        assert solver_fingerprint(Wrap(get_solver("dense"))) == solver_fingerprint(
            Wrap(get_solver("dense"))
        )
        assert solver_fingerprint(Wrap(get_solver("dense"))) != solver_fingerprint(
            Wrap(get_solver("scipy"))
        )

    def test_undersized_cache_does_not_refactor_per_solve(self):
        """Eviction pressure must fall back to retained handles, not thrash."""
        from repro.core import make_weighting, multisplitting_iterate, uniform_bands
        from repro.core.stopping import StoppingCriterion

        A = diagonally_dominant(120, dominance=1.4, bandwidth=5, seed=13)
        b, _ = rhs_for_solution(A, seed=14)
        part = uniform_bands(120, 4).to_general()
        scheme = make_weighting("ownership", part)
        cache = FactorizationCache(capacity=1)
        stop = StoppingCriterion(tolerance=1e-300, max_iterations=8)
        multisplitting_iterate(
            A, b, part, scheme, get_solver("scipy"), stopping=stop, cache=cache
        )
        assert cache.stats.evictions == 3
        # only the 4 build-time factorizations spent factor time; the
        # per-solve lookups that missed did NOT re-factor
        build_only = FactorizationCache()
        from repro.core.local import build_local_systems

        build_local_systems(A, b, part.sets, get_solver("scipy"), cache=build_only)
        assert cache.stats.factor_seconds_spent < max(
            10 * build_only.stats.factor_seconds_spent, 0.05
        )

    def test_mixed_kernels_share_cache(self):
        """One cache serves a mixed per-band kernel assignment."""
        A = diagonally_dominant(10, dominance=1.5, bandwidth=2, seed=3)
        cache = FactorizationCache()
        for name in KERNELS:
            cache.factor(get_solver(name), A)
        assert cache.stats.misses == len(KERNELS)
        assert len(cache) == len(KERNELS)


class TestCacheOnSolverPaths:
    def test_sequential_driver_counts_reuse(self):
        from repro.core import make_weighting, multisplitting_iterate, uniform_bands

        A = diagonally_dominant(60, dominance=1.4, bandwidth=5, seed=7)
        b, _ = rhs_for_solution(A, seed=8)
        part = uniform_bands(60, 3).to_general()
        scheme = make_weighting("ownership", part)
        cache = FactorizationCache()
        res = multisplitting_iterate(A, b, part, scheme, get_solver("scipy"), cache=cache)
        assert res.converged
        assert res.cache_stats.misses == 3  # one factorization per sub-block
        assert res.cache_stats.hits == res.iterations * 3  # one lookup per solve

    def test_facade_reuses_across_solves(self):
        from repro.core import MultisplittingSolver

        A = diagonally_dominant(50, dominance=1.4, bandwidth=4, seed=9)
        b, _ = rhs_for_solution(A, seed=10)
        ms = MultisplittingSolver(processors=4, mode="synchronous")
        r1 = ms.solve(A, b)
        r2 = ms.solve(A, b)
        assert r1.converged and r2.converged
        assert r1.cache_stats.misses == 4
        assert r2.cache_stats.misses == 0  # every factor reused
        assert r2.cache_stats.hits > 0
        assert r2.stats.cache_misses == 0  # surfaced through the trace layer
        assert r2.stats.cache_hits == r2.cache_stats.hits

    def test_facade_cache_opt_out(self):
        from repro.core import MultisplittingSolver

        A = diagonally_dominant(30, dominance=1.5, bandwidth=3, seed=11)
        b, _ = rhs_for_solution(A, seed=12)
        ms = MultisplittingSolver(processors=2, mode="sequential", cache=False)
        res = ms.solve(A, b)
        assert res.converged
        assert res.cache_stats is None

    def test_newton_chord_reuses_factors(self):
        from repro.core import newton_multisplitting

        n = 30
        c = np.linspace(0.5, 1.5, n)  # asymmetric: sub-blocks have distinct content

        def F(x):
            return np.tanh(x) + 0.5 * x - c

        def J(x):
            return sp.diags(1.0 / np.cosh(x) ** 2 + 0.5).tocsr()

        chord = newton_multisplitting(
            F, J, np.zeros(n), processors=3, jacobian_refresh=4
        )
        assert chord.converged
        # every Newton step triggers 3 sub-block lookups per inner iteration;
        # only refresh steps (1 in 4) may factor anything new
        factored_steps = chord.cache_stats.misses / 3
        assert factored_steps <= (chord.newton_iterations + 3) // 4 + 1
        assert factored_steps < chord.newton_iterations
        assert chord.cache_stats.hits > 0

    def test_newton_rejects_bad_refresh(self):
        from repro.core import newton_multisplitting

        with pytest.raises(ValueError):
            newton_multisplitting(
                lambda x: x, lambda x: np.eye(2), np.zeros(2), jacobian_refresh=0
            )
