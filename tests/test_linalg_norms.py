"""Unit tests for repro.linalg.norms."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.linalg import (
    max_norm,
    relative_residual,
    residual,
    residual_norm,
    weighted_max_norm,
)

finite_vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(1, 40),
    elements=st.floats(-1e6, 1e6, allow_nan=False),
)


def test_max_norm_simple():
    assert max_norm(np.array([1.0, -3.0, 2.0])) == 3.0


def test_max_norm_empty():
    assert max_norm(np.array([])) == 0.0


@given(finite_vectors)
def test_max_norm_matches_numpy(v):
    assert max_norm(v) == pytest.approx(np.linalg.norm(v, ord=np.inf))


@given(finite_vectors)
def test_max_norm_nonnegative_and_scale(v):
    assert max_norm(v) >= 0.0
    assert max_norm(2.0 * v) == pytest.approx(2.0 * max_norm(v))


def test_weighted_max_norm_unit_weights_is_max_norm():
    v = np.array([1.0, -5.0, 3.0])
    assert weighted_max_norm(v, np.ones(3)) == max_norm(v)


def test_weighted_max_norm_weights_rescale():
    v = np.array([2.0, 2.0])
    w = np.array([1.0, 4.0])
    assert weighted_max_norm(v, w) == pytest.approx(2.0)


def test_weighted_max_norm_rejects_nonpositive_weights():
    with pytest.raises(ValueError):
        weighted_max_norm(np.ones(2), np.array([1.0, 0.0]))


def test_weighted_max_norm_rejects_shape_mismatch():
    with pytest.raises(ValueError):
        weighted_max_norm(np.ones(2), np.ones(3))


def test_residual_dense_and_sparse_agree():
    rng = np.random.default_rng(0)
    A = rng.random((5, 5))
    x = rng.random(5)
    b = rng.random(5)
    r_dense = residual(A, x, b)
    r_sparse = residual(sp.csr_matrix(A), x, b)
    np.testing.assert_allclose(r_dense, r_sparse)


def test_residual_norm_zero_for_exact_solution():
    A = np.diag([2.0, 3.0])
    x = np.array([1.0, 1.0])
    b = A @ x
    assert residual_norm(A, x, b) == 0.0


def test_relative_residual_scale_free():
    A = np.diag([2.0, 3.0])
    x = np.array([1.0, 2.0])
    b = A @ x
    x_wrong = x + 0.1
    r1 = relative_residual(A, x_wrong, b)
    r2 = relative_residual(1000 * A, x_wrong, 1000 * b)
    assert r1 == pytest.approx(r2)
