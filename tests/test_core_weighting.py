"""Tests for the E_lk weighting families (repro.core.weighting)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AveragingWeighting,
    BlockJacobiWeighting,
    OwnershipWeighting,
    SchwarzWeighting,
    make_weighting,
    uniform_bands,
    validate_weighting,
)

ALL_SCHEMES = ["ownership", "averaging", "schwarz"]


def part(n=12, L=3, overlap=0):
    return uniform_bands(n, L, overlap=overlap).to_general()


class TestConditions4:
    """Every family must satisfy the paper's conditions (4)."""

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    @pytest.mark.parametrize("overlap", [0, 1, 3])
    def test_validate(self, name, overlap):
        scheme = make_weighting(name, part(overlap=overlap))
        validate_weighting(scheme)

    def test_block_jacobi_requires_disjoint(self):
        BlockJacobiWeighting(part(overlap=0))
        with pytest.raises(ValueError):
            BlockJacobiWeighting(part(overlap=1))

    @settings(max_examples=20, deadline=None)
    @given(
        st.sampled_from(ALL_SCHEMES),
        st.integers(6, 40),
        st.integers(2, 5),
        st.integers(0, 4),
    )
    def test_property_partition_of_unity(self, name, n, L, overlap):
        if L > n:
            return
        scheme = make_weighting(name, part(n, L, overlap))
        validate_weighting(scheme)

    def test_support_condition(self):
        """(E_lk)_ii = 0 for i outside J_k."""
        scheme = make_weighting("averaging", part(overlap=2))
        g = scheme.partition
        for l in range(g.nprocs):
            for k in range(g.nprocs):
                full = scheme.matrix(l, k)
                outside = np.setdiff1d(np.arange(g.n), g.sets[k])
                assert np.all(full[outside] == 0.0)


class TestSectionFourEquivalences:
    def test_ownership_disjoint_is_block_jacobi(self):
        """With a disjoint partition, ownership == strict block Jacobi."""
        g = part(overlap=0)
        own = OwnershipWeighting(g)
        bj = BlockJacobiWeighting(g)
        for l in range(g.nprocs):
            for k in range(g.nprocs):
                np.testing.assert_array_equal(
                    own.weight_vector(l, k), bj.weight_vector(l, k)
                )

    def test_ownership_is_l_independent(self):
        """Ownership is an O'Leary-White family: E_lk = E_k."""
        g = part(overlap=2)
        own = OwnershipWeighting(g)
        for k in range(g.nprocs):
            w0 = own.weight_vector(0, k)
            for l in range(1, g.nprocs):
                np.testing.assert_array_equal(own.weight_vector(l, k), w0)

    def test_averaging_splits_overlaps(self):
        g = part(n=12, L=2, overlap=2)
        avg = AveragingWeighting(g)
        w = avg.weight_vector(0, 0)
        # components shared by both processors get weight 1/2
        assert set(np.unique(w)) == {0.5, 1.0}

    def test_schwarz_keeps_own_extended_band(self):
        g = part(n=12, L=2, overlap=2)
        sch = SchwarzWeighting(g)
        np.testing.assert_array_equal(sch.weight_vector(0, 0), np.ones(g.sets[0].size))
        # from the neighbour it takes only components outside J_0
        w01 = sch.weight_vector(0, 1)
        inside = np.isin(g.sets[1], g.sets[0])
        assert np.all(w01[inside] == 0.0)

    def test_schwarz_is_l_dependent(self):
        g = part(n=12, L=3, overlap=2)
        sch = SchwarzWeighting(g)
        w_self = sch.weight_vector(1, 1)
        w_other = sch.weight_vector(0, 1)
        assert not np.array_equal(w_self, w_other)

    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            make_weighting("multiplicative", part())


class TestValidationErrors:
    def test_detects_broken_sum(self):
        g = part(overlap=1)

        class Broken(OwnershipWeighting):
            def weight_vector(self, l, k):
                return 0.5 * super().weight_vector(l, k)

        with pytest.raises(ValueError, match="sum"):
            validate_weighting(Broken(g))

    def test_detects_negative(self):
        g = part(overlap=0)

        class Negative(OwnershipWeighting):
            def weight_vector(self, l, k):
                w = super().weight_vector(l, k).copy()
                if k == 0 and w.size:
                    w[0] = -1.0
                    w[1] = 2.0 if w.size > 1 else w[0]
                return w

        with pytest.raises(ValueError):
            validate_weighting(Negative(g))
