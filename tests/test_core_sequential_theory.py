"""Tests for the in-process iteration, the chaotic variant, and the theory module."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    StoppingCriterion,
    chaotic_iterate,
    check_theorem1,
    extended_operator,
    iteration_matrix,
    make_weighting,
    multisplitting_iterate,
    proposition1_applies,
    proposition2_applies,
    proposition3_applies,
    splitting_matrices,
    uniform_bands,
)
from repro.direct import get_solver
from repro.linalg import spectral_radius
from repro.matrices import (
    advection_diffusion_2d,
    diagonally_dominant,
    poisson_1d,
    poisson_2d,
    rhs_for_solution,
)

DENSE = get_solver("dense")
SCIPY = get_solver("scipy")


def setup(n=60, L=3, dominance=1.5, overlap=0, weighting="ownership", seed=1):
    A = diagonally_dominant(n, dominance=dominance, bandwidth=max(4, n // 10), seed=seed)
    b, x_true = rhs_for_solution(A, seed=seed + 1)
    part = uniform_bands(n, L, overlap=overlap).to_general()
    scheme = make_weighting(weighting, part)
    return A, b, x_true, part, scheme


class TestSequentialIteration:
    def test_converges_to_true_solution(self):
        A, b, x_true, part, scheme = setup()
        res = multisplitting_iterate(A, b, part, scheme, SCIPY)
        assert res.converged
        assert res.residual < 1e-7
        np.testing.assert_allclose(res.x, x_true, atol=1e-6)

    def test_monotone_history_tail(self):
        A, b, _, part, scheme = setup()
        res = multisplitting_iterate(A, b, part, scheme, SCIPY)
        h = res.history
        assert h[-1] < h[0]

    def test_single_processor_is_direct_solve(self):
        A, b, x_true, _, _ = setup()
        part = uniform_bands(A.shape[0], 1).to_general()
        scheme = make_weighting("ownership", part)
        res = multisplitting_iterate(A, b, part, scheme, SCIPY)
        assert res.iterations <= 2
        np.testing.assert_allclose(res.x, x_true, atol=1e-8)

    def test_max_iterations_respected(self):
        A, b, _, part, scheme = setup(dominance=1.05)
        res = multisplitting_iterate(
            A, b, part, scheme, SCIPY, stopping=StoppingCriterion(max_iterations=3)
        )
        assert not res.converged
        assert res.iterations == 3

    def test_callback_invoked(self):
        A, b, _, part, scheme = setup()
        seen = []
        multisplitting_iterate(
            A, b, part, scheme, SCIPY, callback=lambda it, x: seen.append(it)
        )
        assert seen == list(range(1, len(seen) + 1))

    def test_warm_start_reduces_iterations(self):
        A, b, x_true, part, scheme = setup()
        cold = multisplitting_iterate(A, b, part, scheme, SCIPY)
        warm = multisplitting_iterate(A, b, part, scheme, SCIPY, x0=x_true)
        assert warm.iterations < cold.iterations

    def test_residual_metric(self):
        A, b, _, part, scheme = setup()
        res = multisplitting_iterate(
            A, b, part, scheme, SCIPY,
            stopping=StoppingCriterion(metric="residual", tolerance=1e-6),
        )
        assert res.converged
        assert res.residual <= 1e-6

    @pytest.mark.parametrize("weighting", ["ownership", "averaging", "schwarz"])
    @pytest.mark.parametrize("overlap", [0, 2])
    def test_all_weightings_converge(self, weighting, overlap):
        A, b, x_true, part, scheme = setup(overlap=overlap, weighting=weighting)
        res = multisplitting_iterate(A, b, part, scheme, SCIPY)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, atol=1e-6)

    def test_overlap_reduces_iterations_for_slow_problem(self):
        """Figure 3's premise: overlap cuts the iteration count."""
        A = diagonally_dominant(200, dominance=1.05, bandwidth=12, seed=3)
        b, _ = rhs_for_solution(A, seed=4)
        base = multisplitting_iterate(
            A, b, uniform_bands(200, 4).to_general(),
            make_weighting("ownership", uniform_bands(200, 4).to_general()), SCIPY,
        )
        part_ov = uniform_bands(200, 4, overlap=24).to_general()
        over = multisplitting_iterate(
            A, b, part_ov, make_weighting("ownership", part_ov), SCIPY
        )
        assert over.iterations < base.iterations

    def test_x0_shape_check(self):
        A, b, _, part, scheme = setup()
        with pytest.raises(ValueError):
            multisplitting_iterate(A, b, part, scheme, SCIPY, x0=np.ones(3))


class TestChaoticIteration:
    def test_converges_under_async_condition(self):
        A, b, x_true, part, scheme = setup(dominance=2.0)
        res = chaotic_iterate(A, b, part, scheme, SCIPY, seed=0)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, atol=1e-5)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 1000))
    def test_property_any_schedule_converges(self, seed):
        """Theorem 1 (async): every bounded-delay schedule converges."""
        A, b, x_true, part, scheme = setup(n=40, L=4, dominance=1.8)
        res = chaotic_iterate(
            A, b, part, scheme, DENSE, seed=seed, max_delay=4, update_probability=0.5
        )
        assert res.converged
        assert res.residual < 1e-5

    def test_more_iterations_than_synchronous(self):
        A, b, _, part, scheme = setup(dominance=1.3)
        sync = multisplitting_iterate(A, b, part, scheme, SCIPY)
        chaotic = chaotic_iterate(
            A, b, part, scheme, SCIPY, seed=1, update_probability=0.5
        )
        assert chaotic.iterations >= sync.iterations

    def test_invalid_parameters(self):
        A, b, _, part, scheme = setup()
        with pytest.raises(ValueError):
            chaotic_iterate(A, b, part, scheme, SCIPY, update_probability=0.0)
        with pytest.raises(ValueError):
            chaotic_iterate(A, b, part, scheme, SCIPY, max_delay=-1)


class TestSplittingsAndTheorem1:
    def test_splitting_reconstructs_A(self):
        A = poisson_1d(12)
        part = uniform_bands(12, 3).to_general()
        M, N = splitting_matrices(A, part, 1)
        np.testing.assert_allclose(M - N, A.toarray())

    def test_Ml_structure(self):
        A = poisson_1d(9)
        part = uniform_bands(9, 3).to_general()
        M, _ = splitting_matrices(A, part, 0)
        np.testing.assert_allclose(M[:3, :3], A.toarray()[:3, :3])
        # complement carries the Jacobi (diagonal) splitting of A
        np.testing.assert_allclose(M[3:, 3:], 2.0 * np.eye(6))
        assert np.all(M[:3, 3:] == 0.0) and np.all(M[3:, :3] == 0.0)

    def test_theorem1_dominant_matrix(self):
        A = diagonally_dominant(40, dominance=1.5, seed=2)
        rep = check_theorem1(A, uniform_bands(40, 4).to_general())
        assert rep.synchronous_ok
        assert rep.asynchronous_ok
        assert all(r <= a + 1e-12 for r, a in zip(rep.sync_radii, rep.async_radii))

    def test_theorem1_detects_divergent_splitting(self):
        # A matrix that is NOT dominant: off-diagonal mass exceeds diagonal.
        n = 12
        A = np.eye(n) * 0.1 + np.ones((n, n))
        rep = check_theorem1(A, uniform_bands(n, 3).to_general())
        assert not rep.synchronous_ok

    def test_extended_operator_radius_matches_observation(self):
        """rho(T) predicts the observed per-iteration contraction."""
        A = diagonally_dominant(30, dominance=1.3, bandwidth=6, seed=5)
        part = uniform_bands(30, 3).to_general()
        scheme = make_weighting("ownership", part)
        T = extended_operator(A, part, scheme)
        rho = spectral_radius(T)
        assert rho < 1.0
        b, _ = rhs_for_solution(A, seed=6)
        res = multisplitting_iterate(
            A, b, part, scheme, DENSE, stopping=StoppingCriterion(tolerance=1e-12)
        )
        h = res.history
        # asymptotic observed contraction over the last few iterations
        tail = [h[i + 1] / h[i] for i in range(len(h) - 5, len(h) - 1) if h[i] > 0]
        observed = float(np.mean(tail))
        assert observed == pytest.approx(rho, abs=0.12)

    def test_iteration_matrix_spectral_bound(self):
        A = diagonally_dominant(24, dominance=2.0, seed=7)
        part = uniform_bands(24, 2).to_general()
        H = iteration_matrix(A, part, 0)
        assert spectral_radius(H) <= 0.5 + 0.1


class TestPropositions:
    def test_prop1_on_dominant(self):
        assert proposition1_applies(diagonally_dominant(30, seed=1))

    def test_prop1_on_poisson_irreducible(self):
        assert proposition1_applies(poisson_1d(15))

    def test_prop1_rejects_non_dominant(self):
        assert not proposition1_applies(np.array([[1.0, 5.0], [5.0, 1.0]]))

    def test_prop2_on_poisson(self):
        assert proposition2_applies(poisson_2d(4))

    def test_prop2_rejects_non_z(self):
        assert not proposition2_applies(np.array([[2.0, 1.0], [1.0, 2.0]]))

    def test_prop3_on_advection_diffusion(self):
        assert proposition3_applies(advection_diffusion_2d(4, peclet=1.0))

    def test_prop3_rejects_negative_eigenvalue(self):
        A = np.array([[-1.0, 0.0], [0.0, 2.0]])  # Z-matrix, negative eigenvalue
        assert not proposition3_applies(A)

    def test_propositions_imply_theorem1(self):
        """Matrices in the Section 5 classes satisfy Theorem 1's conditions."""
        for A in (poisson_1d(20), diagonally_dominant(20, seed=3),
                  advection_diffusion_2d(4, peclet=0.5)):
            part = uniform_bands(A.shape[0], 4).to_general()
            rep = check_theorem1(A, part)
            assert rep.asynchronous_ok
