"""Tests for the cage analogs and the named workload collection."""

import numpy as np
import pytest

from repro.matrices import (
    CAGE_SPECS,
    cage_analog,
    cage_like,
    is_strictly_diagonally_dominant,
    jacobi_spectral_radius,
    load_workload,
    WORKLOADS,
    workload_names,
)


class TestCage:
    def test_specs_cover_paper_instances(self):
        assert set(CAGE_SPECS) == {"cage10", "cage11", "cage12"}
        assert CAGE_SPECS["cage10"].paper_n == 11397
        assert CAGE_SPECS["cage12"].paper_n == 130228

    def test_size_ordering_matches_paper(self):
        ns = [CAGE_SPECS[k].n for k in ("cage10", "cage11", "cage12")]
        assert ns[0] < ns[1] < ns[2]

    def test_cage_like_is_nonsymmetric(self):
        A = cage_like(200, seed=0)
        assert (A != A.T).nnz > 0

    def test_cage_like_dominant_and_convergent(self):
        A = cage_like(300, seed=1)
        assert is_strictly_diagonally_dominant(A)
        assert jacobi_spectral_radius(A) < 1.0

    def test_cage_like_deterministic(self):
        assert (cage_like(100, seed=5) != cage_like(100, seed=5)).nnz == 0

    def test_cage_like_sparse(self):
        A = cage_like(1000, seed=2)
        # multi-diagonal structure: a few tens of nnz per row at most
        assert A.nnz / A.shape[0] < 40

    def test_cage_analog_scaling(self):
        small = cage_analog("cage10", scale=0.5)
        default = cage_analog("cage10")
        assert small.shape[0] < default.shape[0]

    def test_cage_analog_unknown_name(self):
        with pytest.raises(KeyError):
            cage_analog("cage99")

    def test_cage_like_rejects_bad_args(self):
        with pytest.raises(ValueError):
            cage_like(1)
        with pytest.raises(ValueError):
            cage_like(100, dominance=0.9)
        with pytest.raises(ValueError):
            cage_like(10, strides=(0,))


class TestCollection:
    def test_registry_has_all_five_paper_matrices(self):
        assert set(workload_names()) == {
            "cage10",
            "cage11",
            "cage12",
            "gen-large",
            "gen-overlap",
        }

    def test_paper_orders_recorded(self):
        assert WORKLOADS["gen-large"].paper_n == 500_000
        assert WORKLOADS["gen-overlap"].paper_n == 100_000

    def test_load_returns_consistent_triple(self):
        A, b, x = load_workload("cage10", n=200)
        assert A.shape == (200, 200)
        np.testing.assert_allclose(A @ x, b, rtol=1e-12, atol=1e-9)

    def test_scale_changes_order(self):
        A1, _, _ = load_workload("gen-large", scale=0.05)
        A2, _, _ = load_workload("gen-large", scale=0.1)
        assert A1.shape[0] < A2.shape[0]

    def test_overlap_workload_has_radius_near_one(self):
        A, _, _ = load_workload("gen-overlap", n=1500)
        rho = jacobi_spectral_radius(A)
        assert 0.93 < rho < 1.0

    def test_all_workloads_loadable_small(self):
        for name in workload_names():
            A, b, x = load_workload(name, n=64)
            assert A.shape == (64, 64)
            assert b.shape == (64,)

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            load_workload("cage13")
