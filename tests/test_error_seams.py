"""Regression tests of the runtime's error-handling seams.

The serving gateway (:mod:`repro.serve`) sits directly on the executor
layer, so the fault classifier underneath it must be exact in *both*
directions:

* a kernel (or programming) error inside a worker must surface to the
  caller as the original failure -- never be misread as a worker death
  and "recovered" into a refactor loop that hides the bug;
* a worker death must be recoverable wherever it surfaces -- including
  on the *send* side of the stream, where TCP timing decides whether the
  broken pipe errors the request or the reply;
* reply waits must be governed by the armed :class:`FaultPolicy`
  deadline, not the module-level protocol timeout: a generous policy is
  not cut short, a tight one is not ignored;
* cache counters must stay coherent across recovery: a dead worker's
  final report is lost (a corpse cannot be queried), never
  double-counted once its replacement re-factors the adopted blocks.
"""

from __future__ import annotations

import socket
import time

import numpy as np
import pytest

from repro.core import make_weighting, uniform_bands
from repro.core.stopping import StoppingCriterion
from repro.core.sequential import multisplitting_iterate
from repro.direct import get_solver
from repro.direct.cache import FactorizationCache
from repro.matrices import diagonally_dominant, rhs_for_solution
from repro.runtime import (
    FaultPolicy,
    FlakySolver,
    ProcessExecutor,
    SocketExecutor,
    StragglerSolver,
)
import repro.runtime.processes as processes_module

pytestmark = pytest.mark.filterwarnings(
    "ignore:resource_tracker:UserWarning"
)

_POLICY = FaultPolicy(heartbeat_interval=0.1)


def _problem(n=96, L=4, seed=7):
    A = diagonally_dominant(n, dominance=1.5, bandwidth=4, seed=seed)
    b, _ = rhs_for_solution(A, seed=seed + 1)
    part = uniform_bands(n, L).to_general()
    scheme = make_weighting("ownership", part)
    return A, b, part, scheme


class TestKernelErrorsPropagate:
    """A kernel raising inside a worker surfaces the original exception,
    not a recovery path -- with and without an armed FaultPolicy."""

    def _flaky(self):
        # The first solve call in each worker process raises
        # InjectedFault; later calls succeed (the worker is healthy).
        return FlakySolver(get_solver("scipy"), fail_solves=(1,))

    @pytest.mark.parametrize("policy", [None, _POLICY])
    def test_socket_kernel_error_surfaces(self, policy):
        A, b, part, _ = _problem()
        ex = SocketExecutor(workers=2)
        try:
            ex.attach(A, b, part.sets, self._flaky(), fault_policy=policy)
            z = np.zeros(b.shape)
            with pytest.raises(RuntimeError, match="InjectedFault"):
                ex.solve_round([z] * part.nprocs)
            # The worker is alive and was NOT classified as lost: no
            # recovery ran, and the same binding keeps serving.
            assert ex.fault_stats().workers_lost == 0
            assert len(ex.alive_workers()) == 2
            pieces = ex.solve_round([z] * part.nprocs)
            assert len(pieces) == part.nprocs
        finally:
            ex.close()

    @pytest.mark.parametrize("policy", [None, _POLICY])
    def test_process_kernel_error_surfaces(self, policy):
        A, b, part, _ = _problem()
        ex = ProcessExecutor(max_workers=2)
        try:
            ex.attach(A, b, part.sets, self._flaky(), fault_policy=policy)
            z = np.zeros(b.shape)
            with pytest.raises(RuntimeError, match="InjectedFault"):
                ex.solve_round([z] * part.nprocs)
            assert ex.fault_stats().workers_lost == 0
            assert len(ex.alive_workers()) == 2
        finally:
            ex.close()


class TestSendPathDeath:
    """A stream that breaks on the *send* side is a worker death like
    any other: recovered under a policy, a clean typed failure without.
    (Regression: a BrokenPipeError on ``sendall`` used to escape the
    recovery classifier and abort the run even with a policy armed.)"""

    def _sever(self, ex: SocketExecutor, rank: int) -> None:
        # Driver-side shutdown forces the next send (not the recv) to
        # raise -- the TCP ordering a remote peer death only sometimes
        # produces, pinned down deterministically.
        ex._socks[rank].shutdown(socket.SHUT_RDWR)

    def test_recovers_under_policy(self):
        A, b, part, _ = _problem()
        ex = SocketExecutor(workers=2)
        try:
            ex.attach(A, b, part.sets, get_solver("scipy"), fault_policy=_POLICY)
            z = np.zeros(b.shape)
            first = ex.solve_round([z] * part.nprocs)
            self._sever(ex, 0)
            second = ex.solve_round([z] * part.nprocs)
            for x, y in zip(first, second):
                np.testing.assert_array_equal(x, y)
            assert ex.fault_stats().workers_lost == 1
        finally:
            ex.close()

    def test_fails_fast_without_policy(self):
        A, b, part, _ = _problem()
        ex = SocketExecutor(workers=2)
        try:
            ex.attach(A, b, part.sets, get_solver("scipy"))
            z = np.zeros(b.shape)
            ex.solve_round([z] * part.nprocs)
            self._sever(ex, 0)
            with pytest.raises(RuntimeError, match="died mid-solve"):
                ex.solve_round([z] * part.nprocs)
        finally:
            ex.close()


class TestPolicyDeadlineGovernsReplyWaits:
    """The armed policy's deadline -- not the module-level hardcoded
    ``_REPLY_TIMEOUT`` -- bounds how long the driver waits on replies."""

    def test_generous_policy_not_cut_short(self, monkeypatch):
        # Shrink the protocol backstop below the solve's real duration:
        # the armed policy's *generous* deadline must govern, so the
        # stalled-but-legitimate solve completes instead of timing out.
        monkeypatch.setattr(processes_module, "_REPLY_TIMEOUT", 1.0)
        A, b, part, scheme = _problem()
        kernels = [
            StragglerSolver(get_solver("scipy"), seconds=3.0, slow_calls=(1,)),
            get_solver("scipy"),
            get_solver("scipy"),
            get_solver("scipy"),
        ]
        ex = ProcessExecutor(max_workers=2)
        try:
            ex.attach(
                A, b, part.sets, kernels,
                fault_policy=FaultPolicy(heartbeat_interval=0.1, deadline=30.0),
            )
            z = np.zeros(b.shape)
            pieces = ex.solve_round([z] * part.nprocs)
            assert len(pieces) == part.nprocs
            # The slow worker was legitimate, not lost: no recovery ran.
            assert ex.fault_stats().workers_lost == 0
        finally:
            ex.close()

    def test_tight_deadline_not_ignored(self):
        # The protocol backstop is 300 s; a 1 s policy deadline must
        # reap the hung worker at ~1 s, not wait for the backstop.
        A, b, part, scheme = _problem()
        kernels = [
            # Stalls only on its second solve, i.e. round 2 on the
            # original owner; the adopter's pickled copy restarts its
            # call counter, so the recovered solve runs immediately.
            StragglerSolver(get_solver("scipy"), seconds=60.0, slow_calls=(2,)),
            get_solver("scipy"),
            get_solver("scipy"),
            get_solver("scipy"),
        ]
        ex = ProcessExecutor(max_workers=2)
        try:
            t0 = time.monotonic()
            res = multisplitting_iterate(
                A, b, part, scheme, kernels,
                stopping=StoppingCriterion(tolerance=1e-300, max_iterations=2),
                executor=ex,
                fault_policy=FaultPolicy(heartbeat_interval=0.1, deadline=1.0),
            )
            elapsed = time.monotonic() - t0
            assert res.fault_stats.workers_lost >= 1
            assert elapsed < 30.0  # nowhere near the 60 s stall
        finally:
            ex.close()


class TestCacheStatsAcrossRecovery:
    """``run_cache_stats()`` stays coherent through a mid-solve worker
    loss: the aggregate is *monotonic* -- a dead worker's last-polled
    report is retained (the run did pay for those factors), the
    adopter's re-factors are fresh misses counted exactly once, and a
    double-count (corpse report + the replacement re-reporting the
    same work) would overshoot ``L + orphans``."""

    @pytest.mark.parametrize("respawn", [False, True])
    def test_process_backend(self, respawn):
        A, b, part, _ = _problem()
        L = part.nprocs
        ex = ProcessExecutor(max_workers=2)
        cache = FactorizationCache()
        try:
            ex.attach(
                A, b, part.sets, get_solver("scipy"), cache=cache,
                fault_policy=FaultPolicy(heartbeat_interval=0.1, respawn=respawn),
            )
            z = np.zeros(b.shape)
            ex.solve_round([z] * L)
            # Attach factors each block once (a miss), the solve round
            # looks each factorization up again (a hit).
            before = ex.run_cache_stats()
            assert before.misses == L and before.hits == L
            assert ex.kill_worker(0)
            ex.solve_round([z] * L)  # recovery re-factors the orphans
            after = ex.run_cache_stats()
            # The dead worker's 2 misses stay in the aggregate (its
            # last report is retained so counters never run backwards)
            # and the adopter's 2 re-factors are fresh misses -- a
            # double-count would show L + 4 here.
            assert after.misses == L + 2
            assert after.hits >= before.hits  # monotone, never reset
            assert ex.fault_stats().blocks_requeued == 2
        finally:
            ex.close()

    @pytest.mark.parametrize("respawn", [False, True])
    def test_socket_backend(self, respawn):
        A, b, part, _ = _problem()
        L = part.nprocs
        ex = SocketExecutor(workers=2)
        cache = FactorizationCache()
        try:
            ex.attach(
                A, b, part.sets, get_solver("scipy"), cache=cache,
                fault_policy=FaultPolicy(heartbeat_interval=0.1, respawn=respawn),
            )
            z = np.zeros(b.shape)
            ex.solve_round([z] * L)
            before = ex.run_cache_stats()
            assert before.misses == L and before.hits == L
            assert ex.kill_worker(0)
            ex.solve_round([z] * L)
            after = ex.run_cache_stats()
            assert after.misses == L + 2  # retained corpse report + re-factors
            assert after.hits >= before.hits
            assert ex.fault_stats().blocks_requeued == 2
        finally:
            ex.close()
