"""Tests for the workload generators (repro.matrices.generators)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import lower_bandwidth, upper_bandwidth
from repro.matrices import (
    advection_diffusion_2d,
    banded_random,
    diagonally_dominant,
    is_irreducibly_diagonally_dominant,
    is_strictly_diagonally_dominant,
    is_z_matrix,
    jacobi_spectral_radius,
    poisson_1d,
    poisson_2d,
    poisson_3d,
    random_sparse,
    rhs_for_solution,
    tridiagonal,
)


class TestDiagonallyDominant:
    def test_is_strictly_dominant(self):
        A = diagonally_dominant(100, dominance=2.0, seed=1)
        assert is_strictly_diagonally_dominant(A)

    def test_determinism(self):
        A = diagonally_dominant(50, seed=3)
        B = diagonally_dominant(50, seed=3)
        assert (A != B).nnz == 0

    def test_different_seeds_differ(self):
        A = diagonally_dominant(50, seed=3)
        B = diagonally_dominant(50, seed=4)
        assert (A != B).nnz > 0

    def test_dominance_bounds_jacobi_radius(self):
        A = diagonally_dominant(120, dominance=2.0, seed=5)
        assert jacobi_spectral_radius(A) <= 1.0 / 2.0 + 1e-9

    def test_near_one_dominance_gives_radius_near_one(self):
        A = diagonally_dominant(150, dominance=1.01, seed=6)
        rho = jacobi_spectral_radius(A)
        assert 0.9 < rho < 1.0

    def test_bandwidth_respected(self):
        A = diagonally_dominant(80, bandwidth=5, seed=7)
        assert lower_bandwidth(A) <= 5
        assert upper_bandwidth(A) <= 5

    def test_m_matrix_structure(self):
        A = diagonally_dominant(40, negative_off_diagonals=True, seed=8)
        assert is_z_matrix(A)

    def test_rejects_bad_dominance(self):
        with pytest.raises(ValueError):
            diagonally_dominant(10, dominance=1.0)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            diagonally_dominant(0)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(5, 60),
        st.floats(1.05, 4.0),
        st.integers(1, 8),
    )
    def test_property_strict_dominance(self, n, dominance, density):
        A = diagonally_dominant(n, dominance=dominance, density_per_row=density, seed=0)
        assert is_strictly_diagonally_dominant(A)


class TestPoisson:
    def test_poisson_1d_structure(self):
        A = poisson_1d(5).toarray()
        assert np.all(np.diag(A) == 2.0)
        assert A[0, 1] == -1.0 and A[1, 0] == -1.0

    def test_poisson_1d_irreducibly_dominant(self):
        assert is_irreducibly_diagonally_dominant(poisson_1d(20))

    def test_poisson_2d_shape_and_symmetry(self):
        A = poisson_2d(4, 3)
        assert A.shape == (12, 12)
        assert (A != A.T).nnz == 0

    def test_poisson_2d_row_interior_sum(self):
        A = poisson_2d(5).toarray()
        interior = 2 * 5 + 2  # an interior point: index (2,2)
        assert A[12, 12] == 4.0
        del interior

    def test_poisson_3d_shape(self):
        A = poisson_3d(3)
        assert A.shape == (27, 27)
        assert A.diagonal().max() == 6.0

    def test_poisson_z_matrix(self):
        assert is_z_matrix(poisson_2d(4))

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            poisson_2d(0)
        with pytest.raises(ValueError):
            poisson_3d(2, 0, 2)


class TestAdvectionDiffusion:
    def test_nonsymmetric(self):
        A = advection_diffusion_2d(5, peclet=1.0)
        assert (A != A.T).nnz > 0

    def test_zero_peclet_is_poisson(self):
        A = advection_diffusion_2d(4, peclet=0.0)
        B = poisson_2d(4)
        assert abs(A - B).max() == pytest.approx(0.0)

    def test_dominance_preserved(self):
        A = advection_diffusion_2d(6, peclet=2.0)
        assert is_irreducibly_diagonally_dominant(A)

    def test_z_matrix(self):
        assert is_z_matrix(advection_diffusion_2d(4, peclet=0.7))

    def test_rejects_negative_peclet(self):
        with pytest.raises(ValueError):
            advection_diffusion_2d(4, peclet=-1.0)


class TestStructuralGenerators:
    def test_tridiagonal_values(self):
        A = tridiagonal(4, lower=-2.0, diag=5.0, upper=-1.0).toarray()
        assert A[1, 0] == -2.0 and A[1, 1] == 5.0 and A[1, 2] == -1.0

    def test_banded_random_bandwidths(self):
        A = banded_random(30, lower_bw=3, upper_bw=1, seed=2)
        assert lower_bandwidth(A) <= 3
        assert upper_bandwidth(A) <= 1

    def test_banded_random_dominant(self):
        assert is_strictly_diagonally_dominant(banded_random(25, seed=9))

    def test_banded_rejects_negative_bw(self):
        with pytest.raises(ValueError):
            banded_random(10, lower_bw=-1)

    def test_random_sparse_density(self):
        A = random_sparse(100, density=0.05, seed=1)
        assert A.nnz >= 100  # diagonal added
        assert A.shape == (100, 100)

    def test_random_sparse_rejects_bad_density(self):
        with pytest.raises(ValueError):
            random_sparse(10, density=0.0)


class TestRhs:
    def test_manufactured_solution_roundtrip(self):
        A = poisson_2d(5)
        b, x = rhs_for_solution(A, seed=3)
        np.testing.assert_allclose(A @ x, b)

    def test_explicit_solution(self):
        A = sp.identity(4, format="csr")
        x = np.arange(4.0)
        b, x_out = rhs_for_solution(A, x)
        np.testing.assert_allclose(b, x)
        np.testing.assert_allclose(x_out, x)

    def test_shape_check(self):
        with pytest.raises(ValueError):
            rhs_for_solution(sp.identity(4), np.ones(3))
