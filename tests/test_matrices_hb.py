"""Round-trip and error tests for the Harwell-Boeing .rua reader/writer."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrices import HBFormatError, cage_like, poisson_2d, read_rua, write_rua


def test_roundtrip_poisson(tmp_path):
    A = poisson_2d(6)
    path = tmp_path / "poisson.rua"
    write_rua(path, A, title="poisson 6x6 grid", key="POI6")
    B = read_rua(path)
    assert B.shape == A.shape
    assert abs(A - B).max() < 1e-10


def test_roundtrip_cage_analog(tmp_path):
    A = cage_like(150, seed=4)
    path = tmp_path / "cage.rua"
    write_rua(path, A)
    B = read_rua(path)
    assert abs(A - B).max() < 1e-9


def test_roundtrip_dense_input(tmp_path):
    A = np.array([[2.0, -1.0], [0.5, 3.0]])
    path = tmp_path / "dense.rua"
    write_rua(path, A)
    np.testing.assert_allclose(read_rua(path).toarray(), A, atol=1e-10)


def test_roundtrip_preserves_negative_and_tiny_values(tmp_path):
    A = sp.csr_matrix(np.array([[1e-11, -5.0], [0.0, 2e10]]))
    path = tmp_path / "vals.rua"
    write_rua(path, A)
    B = read_rua(path)
    np.testing.assert_allclose(B.toarray(), A.toarray(), rtol=1e-10)


def test_header_fields(tmp_path):
    A = poisson_2d(3)
    path = tmp_path / "hdr.rua"
    write_rua(path, A, title="my title", key="KEY1")
    lines = path.read_text().splitlines()
    assert lines[0].startswith("my title")
    assert "RUA" in lines[2]


def test_fortran_d_exponent(tmp_path):
    """Legacy files use D exponents (1.5D+00); the reader must accept them."""
    A = sp.csr_matrix(np.array([[1.5]]))
    path = tmp_path / "dexp.rua"
    write_rua(path, A)
    text = path.read_text().replace("E+00", "D+00")
    path.write_text(text)
    assert read_rua(path)[0, 0] == pytest.approx(1.5)


def test_reader_rejects_complex_type(tmp_path):
    A = poisson_2d(3)
    path = tmp_path / "bad.rua"
    write_rua(path, A)
    text = path.read_text().replace("RUA", "CUA")
    path.write_text(text)
    with pytest.raises(HBFormatError):
        read_rua(path)


def test_reader_rejects_truncated_file(tmp_path):
    A = poisson_2d(4)
    path = tmp_path / "trunc.rua"
    write_rua(path, A)
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[: len(lines) // 2]) + "\n")
    with pytest.raises(HBFormatError):
        read_rua(path)


def test_reader_rejects_garbage_header(tmp_path):
    path = tmp_path / "garbage.rua"
    path.write_text("hello\nworld\n")
    with pytest.raises(HBFormatError):
        read_rua(path)
