"""Tests for :mod:`repro.serve`: gateway, batcher, pool, metrics, traffic.

The asyncio pieces run under ``asyncio.run`` inside plain sync tests so
no pytest plugin is required.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.direct.cache import FactorizationCache
from repro.matrices import diagonally_dominant
from repro.serve import (
    GatewayOverloaded,
    MicroBatcher,
    PendingRequest,
    RequestRecord,
    ServeGateway,
    ServeStats,
    SolverPool,
    nearest_rank,
    poisson_trace,
    popularity_weights,
    run_open_loop,
)


def _matrix(n=96, seed=3):
    return diagonally_dominant(n, dominance=1.5, bandwidth=4, seed=seed)


def _direct(A, b):
    return spla.spsolve(A.tocsc(), b)


@pytest.fixture
def pool():
    p = SolverPool(size=2, processors=4)
    yield p
    p.close()


class TestMetrics:
    def test_nearest_rank(self):
        vals = [float(i) for i in range(1, 101)]  # 1..100 sorted
        assert nearest_rank(vals, 50) == 50.0
        assert nearest_rank(vals, 95) == 95.0
        assert nearest_rank(vals, 99) == 99.0
        assert nearest_rank(vals, 100) == 100.0
        assert nearest_rank([7.0], 50) == 7.0
        assert np.isnan(nearest_rank([], 50))
        with pytest.raises(ValueError):
            nearest_rank(vals, 0)
        with pytest.raises(ValueError):
            nearest_rank(vals, 101)

    def test_from_records_derived_values(self):
        records = [
            RequestRecord(tenant="k", latency=0.010 * (i + 1), batch_size=2)
            for i in range(4)
        ]
        stats = ServeStats.from_records(
            records, shed=2, batches=2, wall_seconds=2.0
        )
        assert stats.completed == 4
        assert stats.offered == 6
        assert stats.throughput_rps == pytest.approx(2.0)
        assert stats.mean_batch_size == pytest.approx(2.0)
        assert stats.p50 == pytest.approx(0.020)
        assert stats.p99 == pytest.approx(0.040)
        assert "2.0 req/s" in stats.summary()

    def test_empty_interval_renders(self):
        stats = ServeStats.from_records([], shed=3, batches=0, wall_seconds=1.0)
        assert stats.throughput_rps == 0.0
        assert stats.mean_batch_size == 0.0
        assert np.isnan(stats.p50)
        assert stats.summary()  # must not raise on the all-shed case


class TestMicroBatcher:
    def test_actions_and_take(self):
        mb = MicroBatcher(max_batch=3)
        reqs = [PendingRequest(rhs=None, future=None, arrival=0.0) for _ in range(3)]
        assert mb.add("a", reqs[0]) == "opened"
        assert mb.add("a", reqs[1]) == "queued"
        assert mb.add("b", reqs[2]) == "opened"
        assert mb.pending_requests == 3
        assert sorted(mb.open_keys()) == ["a", "b"]
        assert mb.take("a") == reqs[:2]
        assert mb.take("a") == []  # second taker: benign race, empty
        assert mb.pending_requests == 1

    def test_max_batch_triggers_flush(self):
        mb = MicroBatcher(max_batch=2)

        def req():
            return PendingRequest(rhs=None, future=None, arrival=0.0)

        assert mb.add("a", req()) == "opened"
        assert mb.add("a", req()) == "flush"
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0)


class TestTraffic:
    def test_popularity_weights(self):
        w = popularity_weights(5, skew=1.0)
        assert w.sum() == pytest.approx(1.0)
        assert np.all(np.diff(w) < 0)  # strictly hot -> cold
        flat = popularity_weights(5, skew=0.0)
        np.testing.assert_allclose(flat, 0.2)
        with pytest.raises(ValueError):
            popularity_weights(0)

    def test_poisson_trace_seeded_and_bounded(self):
        a = poisson_trace(200.0, 1.0, 4, skew=1.0, seed=7)
        b = poisson_trace(200.0, 1.0, 4, skew=1.0, seed=7)
        c = poisson_trace(200.0, 1.0, 4, skew=1.0, seed=8)
        assert a == b  # replayable
        assert a != c
        assert all(0.0 <= arr.at < 1.0 for arr in a)
        assert all(0 <= arr.tenant < 4 for arr in a)
        # ~rate * duration arrivals, and the hot tenant dominates
        assert 120 <= len(a) <= 300
        tenants = [arr.tenant for arr in a]
        assert tenants.count(0) > tenants.count(3)
        with pytest.raises(ValueError):
            poisson_trace(0.0, 1.0, 2)


class TestSolverPool:
    def test_register_is_content_keyed(self, pool):
        A = _matrix(seed=3)
        other = _matrix(seed=4)
        key = pool.register(A)
        assert pool.register(A.copy()) == key  # byte-identical shares
        assert pool.register(other) != key
        assert pool.matrix_for(key) is A
        with pytest.raises(KeyError, match="register"):
            pool.matrix_for("nope")

    def test_solve_batch_multi_rhs(self, pool):
        A = _matrix()
        key = pool.register(A)
        rng = np.random.default_rng(0)
        B = rng.standard_normal((A.shape[0], 5))
        X = pool.solve_batch(key, B)
        assert X.shape == B.shape
        for j in range(5):
            np.testing.assert_allclose(X[:, j], _direct(A, B[:, j]), atol=1e-6)


class TestGateway:
    def test_concurrent_requests_coalesce_into_one_round(self, pool):
        A = _matrix()
        gw = ServeGateway(pool, window=0.05, max_batch=32)
        key = gw.register(A)
        rng = np.random.default_rng(1)
        bs = [rng.standard_normal(A.shape[0]) for _ in range(6)]

        async def scenario():
            return await asyncio.gather(*(gw.submit(key, b) for b in bs))

        xs = asyncio.run(scenario())
        stats = gw.stats(wall_seconds=1.0)
        assert stats.completed == 6
        assert stats.batches == 1  # one (n, 6) round, not six solves
        assert stats.mean_batch_size == pytest.approx(6.0)
        assert stats.latencies[0] > 0.0
        for b, x in zip(bs, xs):
            np.testing.assert_allclose(x, _direct(A, b), atol=1e-6)

    def test_max_batch_splits_rounds(self, pool):
        A = _matrix()
        gw = ServeGateway(pool, window=0.05, max_batch=2)
        key = gw.register(A)
        rng = np.random.default_rng(2)
        bs = [rng.standard_normal(A.shape[0]) for _ in range(6)]

        async def scenario():
            return await asyncio.gather(*(gw.submit(key, b) for b in bs))

        xs = asyncio.run(scenario())
        stats = gw.stats(wall_seconds=1.0)
        assert stats.batches == 3
        assert stats.mean_batch_size == pytest.approx(2.0)
        for b, x in zip(bs, xs):
            np.testing.assert_allclose(x, _direct(A, b), atol=1e-6)

    def test_distinct_matrices_never_share_a_round(self, pool):
        A1, A2 = _matrix(seed=3), _matrix(seed=4)
        gw = ServeGateway(pool, window=0.05, max_batch=32)
        k1, k2 = gw.register(A1), gw.register(A2)
        rng = np.random.default_rng(3)
        b1, b2 = rng.standard_normal(A1.shape[0]), rng.standard_normal(A2.shape[0])

        async def scenario():
            return await asyncio.gather(gw.submit(k1, b1), gw.submit(k2, b2))

        x1, x2 = asyncio.run(scenario())
        assert gw.stats(wall_seconds=1.0).batches == 2
        np.testing.assert_allclose(x1, _direct(A1, b1), atol=1e-6)
        np.testing.assert_allclose(x2, _direct(A2, b2), atol=1e-6)

    def test_back_pressure_sheds_with_typed_error(self, pool):
        A = _matrix()
        gw = ServeGateway(pool, window=0.2, max_batch=32, max_pending=2)
        key = gw.register(A)
        rng = np.random.default_rng(4)

        async def scenario():
            first = [
                asyncio.ensure_future(
                    gw.submit(key, rng.standard_normal(A.shape[0]))
                )
                for _ in range(2)
            ]
            await asyncio.sleep(0)  # let both enter the pending list
            with pytest.raises(GatewayOverloaded) as exc_info:
                await gw.submit(key, rng.standard_normal(A.shape[0]))
            assert exc_info.value.limit == 2
            return await asyncio.gather(*first)

        xs = asyncio.run(scenario())
        assert len(xs) == 2
        stats = gw.stats(wall_seconds=1.0)
        assert stats.shed == 1 and stats.completed == 2

    def test_solve_failure_propagates_to_every_request(self, pool):
        A = _matrix()
        gw = ServeGateway(pool, window=0.05, max_batch=32)
        key = gw.register(A)
        bad = A.shape[0] + 1  # wrong-length rhs: the round itself fails

        async def scenario():
            return await asyncio.gather(
                gw.submit(key, np.ones(bad)),
                gw.submit(key, np.ones(bad)),
                return_exceptions=True,
            )

        out = asyncio.run(scenario())
        assert len(out) == 2
        assert all(isinstance(e, Exception) for e in out)
        assert not isinstance(out[0], GatewayOverloaded)
        # failed requests release their admission slots
        assert gw._admitted == 0

    def test_always_raising_solver_never_leaks_admission_slots(self, pool):
        """Regression: every failed round releases its slots.

        With a leak, three waves of two requests against max_pending=2
        would shed the second wave; with correct accounting every wave
        is admitted and every caller sees the solver's own error."""
        A = _matrix()
        gw = ServeGateway(pool, window=0.0, max_batch=32, max_pending=2)
        key = gw.register(A)

        def boom(key, B):
            raise RuntimeError("solver down")

        pool.solve_batch = boom
        b = np.ones(A.shape[0])

        async def scenario():
            waves = []
            for _ in range(3):
                waves.append(
                    await asyncio.gather(
                        gw.submit(key, b), gw.submit(key, b),
                        return_exceptions=True,
                    )
                )
            return waves

        waves = asyncio.run(scenario())
        for wave in waves:
            assert all(isinstance(e, RuntimeError) for e in wave)
            assert not any(isinstance(e, GatewayOverloaded) for e in wave)
        assert gw._admitted == 0
        assert gw.stats(wall_seconds=1.0).shed == 0

    def test_failed_admission_releases_its_slot(self, pool):
        """A request that dies between admit and batcher hand-off (here:
        a ragged rhs numpy cannot coerce) must hand its slot back."""
        A = _matrix()
        gw = ServeGateway(pool, window=0.05, max_batch=32, max_pending=4)
        key = gw.register(A)

        async def scenario():
            with pytest.raises((ValueError, TypeError)):
                await gw.submit(key, [[1.0, 2.0], [3.0]])
            assert gw._admitted == 0
            # the slot is genuinely reusable
            return await gw.submit(key, np.ones(A.shape[0]))

        x = asyncio.run(scenario())
        np.testing.assert_allclose(x, _direct(A, np.ones(A.shape[0])), atol=1e-6)
        assert gw._admitted == 0

    def test_synchronous_flush_failure_fails_batch_without_leak(self, pool):
        """A timer-fired flush that dies before dispatch (mismatched rhs
        lengths in one coalesced round) must fail every caller in the
        batch and release their slots -- not strand them forever."""
        A = _matrix()
        gw = ServeGateway(pool, window=0.01, max_batch=32, max_pending=4)
        key = gw.register(A)

        async def scenario():
            return await asyncio.gather(
                gw.submit(key, np.ones(A.shape[0])),
                gw.submit(key, np.ones(A.shape[0] + 1)),
                return_exceptions=True,
            )

        out = asyncio.run(scenario())
        assert len(out) == 2
        assert all(isinstance(e, Exception) for e in out)
        assert gw._admitted == 0

    def test_cancelled_request_releases_its_slot(self, pool):
        A = _matrix()
        gw = ServeGateway(pool, window=0.05, max_batch=32, max_pending=4)
        key = gw.register(A)

        async def scenario():
            task = asyncio.ensure_future(gw.submit(key, np.ones(A.shape[0])))
            await asyncio.sleep(0)  # admitted, waiting out the window
            assert gw._admitted == 1
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            await gw.drain()
            assert gw._admitted == 0

        asyncio.run(scenario())

    def test_window_zero_max_batch_one_is_request_at_a_time(self, pool):
        A = _matrix()
        gw = ServeGateway(pool, window=0.0, max_batch=1)
        key = gw.register(A)
        rng = np.random.default_rng(5)
        bs = [rng.standard_normal(A.shape[0]) for _ in range(4)]

        async def scenario():
            return await asyncio.gather(*(gw.submit(key, b) for b in bs))

        asyncio.run(scenario())
        stats = gw.stats(wall_seconds=1.0)
        assert stats.batches == 4
        assert stats.mean_batch_size == pytest.approx(1.0)


class TestOpenLoop:
    def test_seeded_trace_end_to_end(self, pool):
        matrices = [_matrix(seed=s) for s in (3, 4)]
        gw = ServeGateway(pool, window=0.01, max_batch=16)
        keys = [gw.register(A) for A in matrices]
        trace = poisson_trace(120.0, 0.5, len(keys), skew=1.0, seed=11)
        rng = np.random.default_rng(12)
        bank = rng.standard_normal((8, matrices[0].shape[0]))

        stats = asyncio.run(
            run_open_loop(gw, keys, trace, lambda a, i: bank[i % len(bank)])
        )
        assert stats.completed == len(trace)
        assert stats.shed == 0
        assert stats.batches <= len(trace)
        assert stats.wall_seconds >= 0.5
        assert stats.cache_stats is not None
        # every distinct matrix factored its bands exactly once
        assert stats.cache_stats.misses == len(matrices) * 4

    def test_overload_is_shed_not_raised(self):
        pool = SolverPool(size=1, processors=4)
        try:
            gw = ServeGateway(pool, window=0.0, max_batch=1, max_pending=1)
            key = gw.register(_matrix())
            trace = poisson_trace(400.0, 0.25, 1, seed=13)
            rng = np.random.default_rng(14)
            b = rng.standard_normal(96)
            stats = asyncio.run(run_open_loop(gw, [key], trace, lambda a, i: b))
        finally:
            pool.close()
        assert stats.offered == len(trace)
        assert stats.shed > 0  # the bound bit, and nothing raised


class TestCacheCapacityHooks:
    def test_resize_evicts_and_notifies(self):
        from repro.direct.dense import DenseLU

        evicted = []
        cache = FactorizationCache(capacity=4, on_evict=evicted.append)
        solver = DenseLU()
        rng = np.random.default_rng(21)
        mats = [rng.standard_normal((8, 8)) + 8 * np.eye(8) for _ in range(4)]
        keys = [cache.key_for(solver, M) for M in mats]
        for M, k in zip(mats, keys):
            cache.factor(solver, M, key=k)
        assert len(cache) == 4 and not evicted
        dropped = cache.resize(2)
        assert dropped == 2
        assert len(cache) == 2
        assert evicted == keys[:2]  # least-recently-used first
        assert cache.stats.evictions == 2
        assert cache.resize(None) == 0  # lift the bound
        assert cache.capacity is None
        with pytest.raises(ValueError):
            cache.resize(0)

    def test_admission_eviction_notifies(self):
        from repro.direct.dense import DenseLU

        evicted = []
        cache = FactorizationCache(capacity=1, on_evict=evicted.append)
        solver = DenseLU()
        rng = np.random.default_rng(22)
        m1 = rng.standard_normal((6, 6)) + 6 * np.eye(6)
        m2 = rng.standard_normal((6, 6)) + 6 * np.eye(6)
        k1 = cache.key_for(solver, m1)
        cache.factor(solver, m1, key=k1)
        cache.factor(solver, m2)
        assert evicted == [k1]
        assert cache.stats.evictions == 1
