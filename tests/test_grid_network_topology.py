"""Tests for the network model, fair sharing, and the cluster presets."""

import pytest

from repro.grid import (
    Link,
    Network,
    WAN_BANDWIDTH,
    cluster1,
    cluster2,
    cluster3,
    custom_cluster,
)


class TestNetworkModel:
    def test_single_flow_full_bandwidth(self):
        link = Link("l", bandwidth=100.0, latency=0.0)
        net = Network([link])
        done = []
        net.start_flow((link,), 200.0, 0.0, lambda: done.append(True))
        nxt = net.next_completion()
        assert nxt is not None
        t, flow = nxt
        assert t == pytest.approx(2.0)

    def test_two_flows_share_equally(self):
        link = Link("l", bandwidth=100.0, latency=0.0)
        net = Network([link])
        f1 = net.start_flow((link,), 100.0, 0.0, None)
        f2 = net.start_flow((link,), 100.0, 0.0, None)
        assert f1.rate == pytest.approx(50.0)
        assert f2.rate == pytest.approx(50.0)

    def test_rate_rebalances_after_completion(self):
        link = Link("l", bandwidth=100.0, latency=0.0)
        net = Network([link])
        f1 = net.start_flow((link,), 100.0, 0.0, None)
        f2 = net.start_flow((link,), 500.0, 0.0, None)
        # advance to f1's completion at t=2 (rate 50)
        net.remove_flow(f1, 2.0)
        assert f2.rate == pytest.approx(100.0)
        assert f2.remaining == pytest.approx(400.0)

    def test_bottleneck_is_min_over_route(self):
        fast = Link("fast", bandwidth=1000.0, latency=0.0)
        slow = Link("slow", bandwidth=10.0, latency=0.0)
        net = Network([fast, slow])
        f = net.start_flow((fast, slow), 100.0, 0.0, None)
        assert f.rate == pytest.approx(10.0)

    def test_perturbation_takes_share_forever(self):
        link = Link("wan", bandwidth=100.0, latency=0.0)
        net = Network([link])
        net.add_perturbation((link,))
        f = net.start_flow((link,), 100.0, 0.0, None)
        assert f.rate == pytest.approx(50.0)
        # perturbation never completes
        assert net.next_completion()[1] is f

    def test_ten_perturbations_cut_rate_eleven_fold(self):
        link = Link("wan", bandwidth=110.0, latency=0.0)
        net = Network([link])
        for _ in range(10):
            net.add_perturbation((link,))
        f = net.start_flow((link,), 100.0, 0.0, None)
        assert f.rate == pytest.approx(10.0)

    def test_bandwidth_conservation(self):
        """Sum of flow rates on a saturated link equals its capacity."""
        link = Link("l", bandwidth=100.0, latency=0.0)
        net = Network([link])
        flows = [net.start_flow((link,), 1000.0, 0.0, None) for _ in range(7)]
        assert sum(f.rate for f in flows) == pytest.approx(100.0)

    def test_invalid_inputs(self):
        link = Link("l", bandwidth=100.0, latency=0.0)
        net = Network([link])
        with pytest.raises(ValueError):
            net.start_flow((link,), 0.0, 0.0, None)
        with pytest.raises(ValueError):
            net.start_flow((), 10.0, 0.0, None)
        with pytest.raises(ValueError):
            Link("bad", bandwidth=0.0, latency=0.0)
        with pytest.raises(ValueError):
            Link("bad", bandwidth=1.0, latency=-1.0)
        with pytest.raises(ValueError):
            net.add_link(Link("l", bandwidth=1.0, latency=0.0))


class TestPresets:
    def test_cluster1_homogeneous(self):
        c = cluster1(20)
        assert len(c.hosts) == 20
        speeds = {h.speed for h in c.hosts}
        assert len(speeds) == 1
        assert c.sites == ["site1"]

    def test_cluster1_bounds(self):
        with pytest.raises(ValueError):
            cluster1(0)
        with pytest.raises(ValueError):
            cluster1(21)

    def test_cluster2_heterogeneous(self):
        c = cluster2(8)
        speeds = [h.speed for h in c.hosts]
        assert max(speeds) / min(speeds) == pytest.approx(2.6 / 1.7, rel=1e-6)

    def test_cluster3_two_sites_seven_three(self):
        c = cluster3(10)
        sites = [h.site for h in c.hosts]
        assert sites.count("siteA") == 7
        assert sites.count("siteB") == 3
        wan = c.wan_link("siteA", "siteB")
        assert wan.bandwidth == WAN_BANDWIDTH

    def test_cluster3_route_crosses_wan(self):
        c = cluster3(10)
        a = c.hosts[0]  # siteA
        b = c.hosts[-1]  # siteB
        route = c.route(a, b)
        assert any(l.name.startswith("wan:") for l in route)
        local = c.route(c.hosts[0], c.hosts[1])
        assert not any(l.name.startswith("wan:") for l in local)

    def test_route_same_host_empty(self):
        c = cluster1(2)
        assert c.route(c.hosts[0], c.hosts[0]) == ()

    def test_memory_scaling(self):
        big = cluster1(2, memory_scale=1.0)
        small = cluster1(2, memory_scale=0.01)
        assert big.hosts[0].memory_bytes > small.hosts[0].memory_bytes

    def test_perturbations_require_wan(self):
        c = cluster1(2)
        with pytest.raises(ValueError):
            c.add_perturbations(1)
        c3 = cluster3(4)
        c3.add_perturbations(3)
        wan = c3.wan_link("siteA", "siteB")
        assert wan.active_flows == 3

    def test_custom_cluster_multi_site(self):
        c = custom_cluster("grid", {"a": [1e6, 1e6], "b": [2e6], "c": [3e6]})
        assert len(c.hosts) == 4
        assert c.wan_link("a", "b") is not c.wan_link("a", "c")
        with pytest.raises(ValueError):
            custom_cluster("empty", {})


class TestEndToEndSharing:
    def test_wan_contention_slows_transfer(self):
        """A transfer across the WAN takes ~(k+1)x longer with k perturbing flows."""

        def timed_transfer(perturbations):
            c = cluster3(10)
            c.add_perturbations(perturbations)
            eng = c.make_engine()
            src, dst = c.hosts[0], c.hosts[-1]
            nbytes = int(WAN_BANDWIDTH)  # 1 second unperturbed

            def sender(ctx):
                yield ctx.send(1, nbytes=nbytes, tag=0)

            def receiver(ctx):
                msg = yield ctx.recv()
                return msg.delivered_at

            eng.spawn(sender, src)
            eng.spawn(receiver, dst)
            eng.run()
            return eng.results()[1]

        t0 = timed_transfer(0)
        t1 = timed_transfer(1)
        t5 = timed_transfer(5)
        assert t1 / t0 == pytest.approx(2.0, rel=0.05)
        assert t5 / t0 == pytest.approx(6.0, rel=0.05)
