"""Tests for the distributed-LU baseline (repro.distbaseline)."""

import numpy as np
import pytest

from repro.distbaseline import (
    BlockCyclic,
    exact_fill_profile,
    extrapolated_fill_profile,
    panel_bounds,
    run_dense_distributed_lu,
    run_distributed_lu,
)
from repro.grid import cluster1, cluster3
from repro.matrices import cage_like, diagonally_dominant, poisson_2d, rhs_for_solution


class TestBlockCyclic:
    def test_panel_bounds(self):
        assert panel_bounds(10, 4) == [(0, 4), (4, 8), (8, 10)]
        with pytest.raises(ValueError):
            panel_bounds(0, 4)
        with pytest.raises(ValueError):
            panel_bounds(4, 0)

    def test_cyclic_ownership(self):
        d = BlockCyclic(n=100, block=10, nprocs=3)
        assert d.npanels == 10
        assert [d.owner_of_panel(p) for p in range(4)] == [0, 1, 2, 0]
        assert d.owner_of_column(25) == 2
        assert d.panels_of(1) == [1, 4, 7]

    def test_columns_cover(self):
        d = BlockCyclic(n=37, block=5, nprocs=4)
        all_cols = np.concatenate([d.columns_of(r) for r in range(4)])
        np.testing.assert_array_equal(np.sort(all_cols), np.arange(37))

    def test_range_checks(self):
        d = BlockCyclic(n=10, block=3, nprocs=2)
        with pytest.raises(IndexError):
            d.owner_of_panel(99)
        with pytest.raises(IndexError):
            d.owner_of_column(-1)
        with pytest.raises(IndexError):
            d.panels_of(5)
        with pytest.raises(ValueError):
            BlockCyclic(n=0, block=1, nprocs=1)


class TestFillModel:
    def test_exact_profile_matches_factor_nnz(self):
        A = poisson_2d(8)
        prof = exact_fill_profile(A)
        assert prof.exact
        assert prof.n == 64
        assert prof.nnz_factors > A.nnz  # fill happened
        assert prof.total_flops > 0

    def test_panel_accessors_consistent(self):
        A = poisson_2d(6)
        prof = exact_fill_profile(A)
        total = sum(
            prof.panel_flops(s, e, e - s) + prof.panel_update_flops(s, e, e - s)
            for s, e in [(0, 12), (12, 24), (24, 36)]
        )
        assert total == pytest.approx(prof.total_flops, rel=1e-9)

    def test_extrapolated_profile_reasonable(self):
        A = cage_like(3000, seed=1)
        prof = extrapolated_fill_profile(A)
        assert not prof.exact
        exact = exact_fill_profile(A)
        ratio = prof.nnz_factors / exact.nnz_factors
        assert 0.2 < ratio < 5.0  # same order of magnitude

    def test_small_matrix_falls_back_to_exact(self):
        A = poisson_2d(5)
        prof = extrapolated_fill_profile(A)
        assert prof.exact


class TestScheduleMode:
    def test_runs_and_reports(self):
        A = cage_like(600, seed=2)
        res = run_distributed_lu(A, None, cluster1(8))
        assert res.status == "ok"
        assert res.simulated_time > 0
        assert res.factor_time > 0
        assert res.solve_time > 0
        assert res.stats.messages > 0

    def test_many_messages_per_panel(self):
        """The defining pathology: broadcasts scale with panel count."""
        A = cage_like(600, seed=2)
        res = run_distributed_lu(A, None, cluster1(8), block=16)
        npanels = res.extra["npanels"]
        assert res.stats.messages >= npanels  # at least one send per panel

    def test_wan_much_slower_than_lan(self):
        A = cage_like(600, seed=2)
        lan = run_distributed_lu(A, None, cluster1(8), fill_mode="exact")
        wan = run_distributed_lu(A, None, cluster3(8), fill_mode="exact")
        assert wan.simulated_time > 3 * lan.simulated_time

    def test_nem_on_small_memory(self):
        A = cage_like(800, seed=3)
        tiny = cluster1(4, memory_scale=1e-7)
        res = run_distributed_lu(A, None, tiny)
        assert res.status == "nem"
        assert res.memory_per_host_bytes > tiny.hosts[0].memory_bytes

    def test_smaller_blocks_more_sync(self):
        A = cage_like(500, seed=4)
        fine = run_distributed_lu(A, None, cluster3(6), block=8, fill_mode="exact")
        coarse = run_distributed_lu(A, None, cluster3(6), block=64, fill_mode="exact")
        assert fine.stats.messages > coarse.stats.messages
        assert fine.simulated_time > coarse.simulated_time

    def test_fill_profile_cache_supported(self):
        A = cage_like(500, seed=5)
        prof = exact_fill_profile(A)
        r1 = run_distributed_lu(A, None, cluster1(4), fill=prof)
        r2 = run_distributed_lu(A, None, cluster1(4), fill=prof)
        assert r1.simulated_time == pytest.approx(r2.simulated_time)

    def test_bad_options(self):
        A = cage_like(300, seed=6)
        with pytest.raises(ValueError):
            run_distributed_lu(A, None, cluster1(4), nprocs=10)
        with pytest.raises(KeyError):
            run_distributed_lu(A, None, cluster1(4), fill_mode="guess")


class TestRealDenseMode:
    def test_matches_numpy_solve(self):
        rng = np.random.default_rng(0)
        n = 48
        A = rng.uniform(-1, 1, (n, n)) + n * np.eye(n)
        b = rng.uniform(-1, 1, n)
        res = run_dense_distributed_lu(A, b, cluster1(4), block=8)
        assert res.status == "ok"
        np.testing.assert_allclose(res.x, np.linalg.solve(A, b), atol=1e-8)
        assert res.residual < 1e-8

    def test_requires_pivoting(self):
        A = np.array(
            [[0.0, 2.0, 1.0, 1.0],
             [1.0, 0.0, 0.5, 0.25],
             [3.0, 1.0, 0.0, 2.0],
             [1.0, 2.0, 1.0, 0.0]]
        )
        b = np.arange(4.0)
        res = run_dense_distributed_lu(A, b, cluster1(2), block=2)
        np.testing.assert_allclose(res.x, np.linalg.solve(A, b), atol=1e-10)

    def test_uneven_panels(self):
        rng = np.random.default_rng(1)
        n = 23  # not a multiple of the block size
        A = rng.uniform(-1, 1, (n, n)) + n * np.eye(n)
        b = rng.uniform(-1, 1, n)
        res = run_dense_distributed_lu(A, b, cluster1(3), block=4)
        np.testing.assert_allclose(res.x, np.linalg.solve(A, b), atol=1e-8)

    def test_single_process(self):
        rng = np.random.default_rng(2)
        A = rng.uniform(-1, 1, (12, 12)) + 12 * np.eye(12)
        b = rng.uniform(-1, 1, 12)
        res = run_dense_distributed_lu(A, b, cluster1(1), block=4)
        np.testing.assert_allclose(res.x, np.linalg.solve(A, b), atol=1e-9)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            run_dense_distributed_lu(np.ones((2, 3)), np.ones(2), cluster1(2))
        with pytest.raises(ValueError):
            run_dense_distributed_lu(np.eye(3), np.ones(4), cluster1(2))


class TestBaselineVsMultisplitting:
    def test_multisplitting_beats_baseline_on_wan(self):
        """The paper's headline: coarse-grained multisplitting wins on grids.

        One WAN broadcast per panel (~n/block latency-bound syncs) against
        a few dozen coarse iterations.
        """
        from repro.core import MultisplittingSolver

        A = diagonally_dominant(1500, dominance=2.0, bandwidth=25, seed=7)
        b, _ = rhs_for_solution(A, seed=8)
        baseline = run_distributed_lu(
            A, None, cluster3(8), block=16, fill_mode="exact"
        )
        ms = MultisplittingSolver(mode="synchronous").solve(A, b, cluster=cluster3(8))
        assert ms.status == "ok"
        assert baseline.simulated_time > 2 * ms.simulated_time
