"""Tests for band and general partitions (repro.core.partition)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GeneralPartition, proportional_bands, uniform_bands
from repro.matrices import poisson_1d, diagonally_dominant


class TestUniformBands:
    def test_exact_cover(self):
        p = uniform_bands(10, 3)
        assert p.bounds == ((0, 3), (3, 7), (7, 10))

    def test_single_processor(self):
        p = uniform_bands(5, 1)
        assert p.bounds == ((0, 5),)

    def test_more_procs_than_rows_rejected(self):
        with pytest.raises(ValueError):
            uniform_bands(3, 5)

    def test_zero_procs_rejected(self):
        with pytest.raises(ValueError):
            uniform_bands(5, 0)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 200), st.integers(1, 16))
    def test_property_cover_and_sizes(self, n, L):
        if L > n:
            with pytest.raises(ValueError):
                uniform_bands(n, L)
            return
        p = uniform_bands(n, L)
        covered = np.concatenate([p.core_indices(l) for l in range(L)])
        np.testing.assert_array_equal(np.sort(covered), np.arange(n))
        sizes = [p.core_range(l)[1] - p.core_range(l)[0] for l in range(L)]
        assert max(sizes) - min(sizes) <= 1  # near-equal


class TestOverlap:
    def test_extended_ranges_clip_at_borders(self):
        p = uniform_bands(10, 2, overlap=3)
        assert p.extended_range(0) == (0, 8)
        assert p.extended_range(1) == (2, 10)

    def test_zero_overlap_extended_equals_core(self):
        p = uniform_bands(12, 3, overlap=0)
        for l in range(3):
            assert p.extended_range(l) == p.core_range(l)

    def test_with_overlap_copy(self):
        p = uniform_bands(10, 2)
        q = p.with_overlap(2)
        assert q.overlap == 2 and p.overlap == 0
        assert q.bounds == p.bounds

    def test_negative_overlap_rejected(self):
        with pytest.raises(ValueError):
            uniform_bands(10, 2, overlap=-1)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(4, 80), st.integers(2, 6), st.integers(0, 10))
    def test_property_core_within_extended(self, n, L, overlap):
        if L > n:
            return
        p = uniform_bands(n, L, overlap=overlap)
        g = p.to_general()
        for l in range(L):
            assert np.isin(g.core[l], g.sets[l]).all()


class TestProportionalBands:
    def test_faster_hosts_get_larger_bands(self):
        p = proportional_bands(100, [1e6, 3e6])
        sizes = [b[1] - b[0] for b in p.bounds]
        assert sizes[1] > sizes[0]
        assert sum(sizes) == 100

    def test_equal_speeds_equal_bands(self):
        p = proportional_bands(90, [2e6, 2e6, 2e6])
        sizes = {b[1] - b[0] for b in p.bounds}
        assert sizes == {30}

    def test_every_band_nonempty_with_extreme_ratio(self):
        p = proportional_bands(10, [1.0, 1000.0, 1.0])
        assert all(b[1] - b[0] >= 1 for b in p.bounds)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            proportional_bands(10, [])
        with pytest.raises(ValueError):
            proportional_bands(10, [1.0, -1.0])
        with pytest.raises(ValueError):
            proportional_bands(2, [1.0, 1.0, 1.0])

    @settings(max_examples=20, deadline=None)
    @given(st.integers(5, 100), st.integers(1, 5), st.integers(0, 100))
    def test_property_exact_cover(self, n, L, seed):
        if L > n:
            return
        rng = np.random.default_rng(seed)
        speeds = rng.uniform(0.5, 3.0, size=L).tolist()
        p = proportional_bands(n, speeds)
        assert p.bounds[0][0] == 0
        assert p.bounds[-1][1] == n


class TestGeneralPartition:
    def test_band_lowering_valid(self):
        g = uniform_bands(20, 4, overlap=2).to_general()
        assert g.nprocs == 4
        assert g.multiplicity().max() == 2  # pairwise overlaps only

    def test_owner_map(self):
        g = uniform_bands(9, 3).to_general()
        owner = g.owner_of()
        np.testing.assert_array_equal(owner, [0, 0, 0, 1, 1, 1, 2, 2, 2])

    def test_non_contiguous_sets_allowed(self):
        # Remark 2: a processor may own non-adjacent parts.
        sets = (np.array([0, 2, 4]), np.array([1, 3, 5]))
        g = GeneralPartition(n=6, sets=sets, core=sets)
        assert g.nprocs == 2

    def test_core_must_partition(self):
        with pytest.raises(ValueError):
            GeneralPartition(
                n=4,
                sets=(np.array([0, 1]), np.array([2, 3])),
                core=(np.array([0, 1]), np.array([1, 2])),  # not disjoint cover
            )

    def test_core_subset_of_set(self):
        with pytest.raises(ValueError):
            GeneralPartition(
                n=4,
                sets=(np.array([0, 1]), np.array([2, 3])),
                core=(np.array([0, 2]), np.array([1, 3])),
            )

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            GeneralPartition(
                n=2, sets=(np.array([], dtype=int), np.array([0, 1])),
                core=(np.array([], dtype=int), np.array([0, 1])),
            )

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            GeneralPartition(
                n=2, sets=(np.array([0, 5]),), core=(np.array([0, 1]),)
            )


class TestDependencies:
    def test_tridiagonal_chain(self):
        A = poisson_1d(12)
        g = uniform_bands(12, 3).to_general()
        deps = g.dependencies(A)
        assert deps == [[1], [0, 2], [1]]
        dependents = g.dependents(A)
        assert dependents == [[1], [0, 2], [1]]

    def test_wide_band_reaches_farther(self):
        A = diagonally_dominant(30, bandwidth=12, density_per_row=8, seed=1)
        g = uniform_bands(30, 5).to_general()
        deps = g.dependencies(A)
        # middle processor sees at least both adjacent bands
        assert set(deps[2]) >= {1, 3}

    def test_dependents_transpose_of_dependencies(self):
        A = diagonally_dominant(40, bandwidth=6, seed=2)
        g = uniform_bands(40, 4).to_general()
        deps = g.dependencies(A)
        dependents = g.dependents(A)
        for l, ds in enumerate(deps):
            for k in ds:
                assert l in dependents[k]
