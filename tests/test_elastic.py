"""Elastic fleets: grow/shrink mid-solve with self-consistent re-planning.

The tentpole property is determinism: a block solve is a pure function
of ``(block, z)``, and elastic migration changes only *where* blocks are
solved, never their sizes -- so a run whose fleet is halved and then
grown back mid-solve must produce **bit-identical** iterates to the
never-disturbed inline run.  The conformance matrix asserts exactly
that, across both distributed backends and every decomposition shape of
the paper's Remarks 2-3.

Around it: the no-op contract for fleetless executors, the fixed-point
calibrated planner, the deterministic LPT re-balancer, migration
accounting on ``FaultStats``, chaos-driven churn injection, and the
kill-then-grow monotonicity of the wire/cache counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    chaotic_iterate,
    make_weighting,
    multisplitting_iterate,
    uniform_bands,
)
from repro.core.partition import interleaved_partition, permuted_bands
from repro.core.stopping import StoppingCriterion
from repro.direct import get_solver
from repro.direct.cache import FactorizationCache
from repro.grid.topology import cluster1, cluster3
from repro.runtime import (
    ChaosExecutor,
    FaultInjector,
    InlineExecutor,
    ProcessExecutor,
    SocketExecutor,
    ThreadExecutor,
)
from repro.schedule import (
    ElasticController,
    ElasticPolicy,
    balanced_assignment,
    fixed_point_placement,
    proportional_placement,
    uniform_placement,
)

BACKENDS = ("processes", "sockets")

PARTITION_KINDS = ("band", "schwarz", "interleaved", "permuted")


def _make_executor(name, nworkers=3):
    if name == "processes":
        return ProcessExecutor(max_workers=nworkers)
    return SocketExecutor(workers=nworkers)


def _general_problem(kind, n=96, L=4, seed=5):
    """Same decomposition-shape axis as the runtime conformance suite."""
    from repro.matrices import diagonally_dominant, rhs_for_solution

    A = diagonally_dominant(n, dominance=1.5, bandwidth=4, seed=seed)
    b, _ = rhs_for_solution(A, seed=seed + 1)
    if kind == "band":
        part = uniform_bands(n, L).to_general()
        scheme = make_weighting("ownership", part)
    elif kind == "schwarz":
        part = uniform_bands(n, L, overlap=6).to_general()
        scheme = make_weighting("schwarz", part)
    elif kind == "interleaved":
        part = interleaved_partition(n, L, chunk=4)
        scheme = make_weighting("ownership", part)
    else:  # permuted
        perm = np.random.default_rng(seed).permutation(n)
        part = permuted_bands(perm, L, overlap=4)
        scheme = make_weighting("averaging", part)
    return A, b, part, scheme


class TestNoOpContract:
    """Executors without a separate fleet warn and return empty."""

    @pytest.mark.parametrize("make", [InlineExecutor, ThreadExecutor])
    def test_grow_shrink_warn_and_noop(self, make):
        ex = make()
        try:
            with pytest.warns(RuntimeWarning, match="no-op"):
                assert ex.grow(2) == []
            with pytest.warns(RuntimeWarning, match="no-op"):
                assert ex.shrink([0]) == []
            assert ex.membership_version() == 0
            assert ex.migrate({}) == 0
            assert ex.owner_map() == {}
        finally:
            ex.close()

    def test_async_iterate_warns_elastic_ignored(self):
        from repro.runtime.asynchronous import async_iterate

        A, b, part, scheme = _general_problem("band", n=48, L=2)
        with pytest.warns(RuntimeWarning, match="no worker fleet"):
            res = async_iterate(
                A, b, part, scheme, get_solver("scipy"),
                stopping=StoppingCriterion(tolerance=1e-8),
                elastic=True,
            )
        assert res.converged

    def test_pipelined_dispatch_ignores_elastic(self):
        A, b, part, scheme = _general_problem("band", n=48, L=2)
        with pytest.warns(RuntimeWarning, match="pipelined"):
            res = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"),
                stopping=StoppingCriterion(tolerance=1e-8),
                dispatch="pipelined", elastic=True,
            )
        assert res.converged


class _ChurnController(ElasticController):
    """Controller that injects one shrink and one grow at fixed rounds.

    The injected membership events go through the public ``shrink`` /
    ``grow`` verbs; the base class then notices the version change and
    re-balances -- exactly the production loop, with a deterministic
    trigger instead of an operator."""

    def __init__(self, executor, nblocks, *, shrink_at, grow_at, tracer=None):
        super().__init__(executor, nblocks, tracer=tracer)
        self.shrink_at = shrink_at
        self.grow_at = grow_at
        self.retired: list[int] = []
        self.added: list[int] = []

    def maybe_replan(self, round_index: int) -> int:
        if round_index == self.shrink_at:
            live = sorted(self.executor.alive_workers())
            self.retired = self.executor.shrink(live[-1:])
        if round_index == self.grow_at:
            self.added = self.executor.grow(1)
        return super().maybe_replan(round_index)


class TestElasticConformance:
    """Grow/shrink mid-solve never changes a single bit of the iterates."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("kind", PARTITION_KINDS)
    def test_bit_identical_vs_undisturbed_inline(self, backend, kind):
        A, b, part, scheme = _general_problem(kind)
        stopping = StoppingCriterion(tolerance=1e-300, max_iterations=8)
        ref = multisplitting_iterate(
            A, b, part, scheme, get_solver("scipy"), stopping=stopping
        )
        ex = _make_executor(backend)
        try:
            controller = _ChurnController(ex, part.nprocs, shrink_at=2, grow_at=4)
            res = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"),
                stopping=stopping, executor=ex, elastic=controller,
                cache=FactorizationCache(),
            )
        finally:
            ex.close()
        assert len(controller.retired) == 1 and len(controller.added) == 1
        assert controller.replans >= 1
        assert res.history == ref.history
        np.testing.assert_array_equal(res.x, ref.x)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_migration_counters_and_membership(self, backend):
        A, b, part, scheme = _general_problem("band")
        stopping = StoppingCriterion(tolerance=1e-300, max_iterations=8)
        ex = _make_executor(backend)
        try:
            v0 = ex.membership_version()
            controller = _ChurnController(ex, part.nprocs, shrink_at=2, grow_at=4)
            res = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"),
                stopping=stopping, executor=ex, elastic=controller,
            )
            v1 = ex.membership_version()
        finally:
            ex.close()
        fs = res.fault_stats
        assert fs is not None
        assert fs.grow_events == 1 and fs.shrink_events == 1
        assert fs.blocks_migrated >= 1
        assert fs.migration_seconds >= 0.0
        # Elastic events are planned reconfiguration, not faults.
        assert fs.workers_lost == 0 and not fs.any_faults
        # attach + shrink + grow (+ replans) each bump the version.
        assert v1 >= v0 + 3

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_chaotic_driver_elastic_bit_identical(self, backend):
        A, b, part, scheme = _general_problem("band")
        stopping = StoppingCriterion(tolerance=1e-300, max_iterations=6)
        ref = chaotic_iterate(
            A, b, part, scheme, get_solver("scipy"),
            stopping=stopping, seed=3,
        )
        ex = _make_executor(backend)
        try:
            controller = _ChurnController(ex, part.nprocs, shrink_at=1, grow_at=3)
            res = chaotic_iterate(
                A, b, part, scheme, get_solver("scipy"),
                stopping=stopping, seed=3, executor=ex, elastic=controller,
            )
        finally:
            ex.close()
        assert len(controller.retired) == 1 and len(controller.added) == 1
        np.testing.assert_array_equal(res.x, ref.x)

    def test_shrink_rejects_retiring_whole_fleet(self):
        A, b, part, scheme = _general_problem("band")
        ex = _make_executor("processes", nworkers=2)
        try:
            ex.attach(A, b, part.sets, get_solver("scipy"))
            with pytest.raises(ValueError, match="whole fleet"):
                ex.shrink([0, 1])
        finally:
            ex.close()

    def test_grow_then_solve_without_controller(self):
        """The verbs are usable directly: grown workers join the pool."""
        A, b, part, scheme = _general_problem("band")
        stopping = StoppingCriterion(tolerance=1e-300, max_iterations=6)
        ref = multisplitting_iterate(
            A, b, part, scheme, get_solver("scipy"), stopping=stopping
        )
        ex = _make_executor("processes", nworkers=2)

        def cb(it, x):
            if it == 2:
                added = ex.grow(2)
                assert added == [2, 3]
                moved = ex.migrate(
                    balanced_assignment(
                        {l: 1.0 for l in range(part.nprocs)},
                        ex.alive_workers(),
                    )
                )
                assert moved >= 1

        try:
            res = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"),
                stopping=stopping, executor=ex, callback=cb,
            )
        finally:
            ex.close()
        np.testing.assert_array_equal(res.x, ref.x)

    def test_migrate_validates_blocks_and_targets(self):
        A, b, part, scheme = _general_problem("band")
        ex = _make_executor("processes", nworkers=2)
        try:
            ex.attach(A, b, part.sets, get_solver("scipy"))
            with pytest.raises(KeyError):
                ex.migrate({99: 0})
            with pytest.raises(ValueError):
                ex.migrate({0: 57})
        finally:
            ex.close()


class TestChaosChurn:
    """FaultInjector-driven grow/shrink: churn without touching iterates."""

    def test_injected_churn_bit_identical(self):
        A, b, part, scheme = _general_problem("band")
        stopping = StoppingCriterion(tolerance=1e-300, max_iterations=8)
        ref = multisplitting_iterate(
            A, b, part, scheme, get_solver("scipy"), stopping=stopping
        )
        inj = FaultInjector(seed=7, grow_rounds=(2,), shrink_rounds=(4,))
        chaos = ChaosExecutor(InlineExecutor(), inj)
        try:
            res = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"),
                stopping=stopping, executor=chaos,
            )
        finally:
            chaos.close()
        np.testing.assert_array_equal(res.x, ref.x)
        fs = res.fault_stats
        assert fs is not None
        assert fs.grow_events == 1 and fs.shrink_events == 1
        assert not fs.any_faults

    def test_virtual_membership_version_advances(self):
        A, b, part, scheme = _general_problem("band")
        chaos = ChaosExecutor(InlineExecutor(), FaultInjector(seed=0))
        try:
            chaos.attach(A, b, part.sets, get_solver("scipy"))
            v0 = chaos.membership_version()
            added = chaos.grow(1)
            assert len(added) == 1
            assert chaos.membership_version() == v0 + 1
            retired = chaos.shrink(added)
            assert retired == added
            assert chaos.membership_version() == v0 + 2
            # every block still owned by a live virtual worker
            live = set(chaos.alive_workers())
            assert set(chaos.owner_map().values()) <= live
        finally:
            chaos.close()


class TestFixedPointPlanner:
    def test_sizes_partition_and_determinism(self):
        cluster = cluster3(10)
        plan = fixed_point_placement(cluster, 4000, nprocs=10)
        again = fixed_point_placement(cluster, 4000, nprocs=10)
        assert sum(plan.sizes) == 4000 and len(plan.sizes) == 10
        assert all(s > 0 for s in plan.sizes)
        assert plan.sizes == again.sizes
        assert plan.assignment == tuple(range(10))

    def test_band_price_fixed_point_reached(self):
        """With the size-independent band price the result is a true
        fixed point: re-pricing and re-balancing reproduces the sizes."""
        from repro.schedule import (
            band_comm_costs,
            cost_model_placement,
            iteration_cost_model,
        )

        cluster = cluster1(6)
        n = 3000
        plan = fixed_point_placement(cluster, n, nprocs=6)
        hosts = cluster.hosts[:6]
        speeds = [h.speed for h in hosts]
        re_balanced = cost_model_placement(
            n, speeds,
            cost=iteration_cost_model(5.0, k=1),
            fixed=band_comm_costs(list(hosts), cluster, n, 1),
            workers=plan.workers,
        )
        assert re_balanced.sizes == plan.sizes

    def test_shortcut_strategies_match_their_planners(self):
        cluster = cluster3(10)
        hosts = cluster.hosts
        speeds = [h.speed for h in hosts]
        uni = fixed_point_placement(cluster, 1000, strategy="uniform")
        prop = fixed_point_placement(cluster, 1000, strategy="proportional")
        assert uni.sizes == uniform_placement(1000, len(hosts)).sizes
        assert prop.sizes == proportional_placement(1000, speeds).sizes

    def test_validation(self):
        cluster = cluster1(4)
        with pytest.raises(ValueError, match="hosts"):
            fixed_point_placement(cluster, 100, nprocs=99)
        with pytest.raises(ValueError, match="strategy"):
            fixed_point_placement(cluster, 100, strategy="nope")


class TestBalancedAssignment:
    def test_lpt_greedy_known_case(self):
        weights = {0: 3.0, 1: 2.0, 2: 2.0, 3: 1.0}
        assert balanced_assignment(weights, [0, 1]) == {0: 0, 1: 1, 2: 1, 3: 0}

    def test_deterministic_and_total(self):
        rng = np.random.default_rng(11)
        weights = {l: float(w) for l, w in enumerate(rng.random(17))}
        a1 = balanced_assignment(weights, [4, 2, 9])
        a2 = balanced_assignment(dict(reversed(list(weights.items()))), [9, 4, 2])
        assert a1 == a2
        assert set(a1) == set(weights)
        assert set(a1.values()) <= {2, 4, 9}

    def test_equal_weights_spread_evenly(self):
        a = balanced_assignment({l: 1.0 for l in range(8)}, [0, 1])
        counts = {w: list(a.values()).count(w) for w in (0, 1)}
        assert counts == {0: 4, 1: 4}

    def test_no_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            balanced_assignment({0: 1.0}, [])


class TestElasticPolicyAndController:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ElasticPolicy(check_every=0)
        with pytest.raises(ValueError):
            ElasticPolicy(drift_threshold=0.0)
        with pytest.raises(ValueError):
            ElasticPolicy(min_rounds_between=-1)

    def test_controller_noop_without_elastic_surface(self):
        """Wiring the controller over a fleetless executor costs nothing."""
        A, b, part, scheme = _general_problem("band", n=48, L=2)
        ex = InlineExecutor()
        try:
            ex.attach(A, b, part.sets, get_solver("scipy"))
            ctrl = ElasticController(ex, part.nprocs)
            assert ctrl.maybe_replan(0) == 0
            assert ctrl.replans == 0
        finally:
            ex.close()

    def test_drift_trigger_replans_without_membership_change(self):
        class _Fake:
            """Static two-worker fleet with a lopsided measured load."""

            def __init__(self):
                self.owner = {0: 0, 1: 0, 2: 0, 3: 1}
                self.migrations = []

            def membership_version(self):
                return 7

            def block_seconds(self):
                return {0: 4.0, 1: 4.0, 2: 4.0, 3: 1.0}

            def owner_map(self):
                return dict(self.owner)

            def alive_workers(self):
                return [0, 1]

            def migrate(self, assignment):
                moved = {
                    l: w for l, w in assignment.items() if self.owner[l] != w
                }
                self.owner.update(moved)
                self.migrations.append(moved)
                return len(moved)

        fake = _Fake()
        ctrl = ElasticController(
            fake, 4, policy=ElasticPolicy(drift_threshold=0.5)
        )
        # Seconds were snapshotted at init; re-reading shows no *delta*,
        # so uniform weights -> drift (3 blocks vs 1) fires the trigger.
        moved = ctrl.maybe_replan(1)
        assert moved >= 1 and ctrl.replans == 1
        loads = {w: list(fake.owner.values()).count(w) for w in (0, 1)}
        assert loads == {0: 2, 1: 2}

    def test_hysteresis_suppresses_back_to_back_replans(self):
        class _Versioned:
            def __init__(self):
                self.version = 0
                self.calls = 0

            def membership_version(self):
                return self.version

            def block_seconds(self):
                return {}

            def owner_map(self):
                return {0: 0, 1: 1}

            def alive_workers(self):
                return [0, 1]

            def migrate(self, assignment):
                self.calls += 1
                return 0

        fake = _Versioned()
        ctrl = ElasticController(
            fake, 2, policy=ElasticPolicy(min_rounds_between=4)
        )
        fake.version = 1
        assert ctrl.maybe_replan(1) == 0 and ctrl.replans == 1
        fake.version = 2
        assert ctrl.maybe_replan(2) == 0
        assert ctrl.replans == 1  # suppressed: within the hysteresis window
        assert ctrl.maybe_replan(5) == 0
        assert ctrl.replans == 2


class TestKillThenGrowMonotonicity:
    """Counters survive recovery *and* elastic churn without resets."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cache_and_wire_stats_monotone(self, backend):
        from repro.runtime.resilience import FaultPolicy

        A, b, part, scheme = _general_problem("band")
        ex = _make_executor(backend)
        z = [np.zeros(b.shape)] * part.nprocs
        try:
            ex.attach(
                A, b, part.sets, get_solver("scipy"),
                cache=FactorizationCache(),
                fault_policy=FaultPolicy(max_worker_losses=2),
            )
            for _ in range(2):
                ex.solve_round(z)
            s1 = ex.run_cache_stats()
            w1 = ex.wire_stats()
            assert ex.kill_worker(0)
            ex.solve_round(z)  # triggers detection + re-home
            s2 = ex.run_cache_stats()
            added = ex.grow(1)
            assert added
            ex.solve_round(z)
            retired = ex.shrink(1)
            assert retired
            ex.solve_round(z)
            s3 = ex.run_cache_stats()
            w3 = ex.wire_stats()
        finally:
            ex.close()
        # A dead worker's counters fold into the retired accumulator
        # instead of vanishing; grow/shrink never reset or double-count.
        assert s2.hits >= s1.hits and s2.misses >= s1.misses
        assert s3.hits > s2.hits and s3.misses >= s2.misses
        assert w3["vector_bytes_sent"] >= w1["vector_bytes_sent"] > 0
        assert w3["vector_bytes_received"] >= w1["vector_bytes_received"] > 0

    def test_process_respawn_then_grow_rank_never_reused(self):
        """Ranks only ever append: respawns and grows cannot alias slots."""
        from repro.runtime.resilience import FaultPolicy

        A, b, part, scheme = _general_problem("band")
        ex = _make_executor("processes", nworkers=2)
        z = [np.zeros(b.shape)] * part.nprocs
        try:
            ex.attach(
                A, b, part.sets, get_solver("scipy"),
                fault_policy=FaultPolicy(max_worker_losses=2, respawn=True),
            )
            ex.solve_round(z)
            assert ex.kill_worker(1)
            ex.solve_round(z)  # respawn appends a new rank
            added = ex.grow(1)
            live = set(ex.alive_workers())
            assert added and set(added) <= live
            assert len(added) == 1 and added[0] == max(live)
            ex.solve_round(z)
            fs = ex.fault_stats()
        finally:
            ex.close()
        assert fs.workers_lost == 1 and fs.grow_events == 1
