"""Round-trip and fuzz suite for the zero-copy wire codec.

Property-based (Hypothesis) coverage of :mod:`repro.runtime.wire`:

* arbitrary dtypes, shapes (including 0-sized), C- and F-order arrays,
  and nested containers survive a socket round trip **bit-identical**
  in both wire protocols;
* truncated streams and oversized declared lengths are rejected with
  :class:`FrameError` (a ``ConnectionError``, so executors route
  garbage frames through their dead-peer fault paths);
* :class:`BufferPool` rotation really reuses slots -- and reallocates
  on size changes;
* the executor-level contract: ``SocketExecutor(wire_protocol=...)``
  produces bit-identical iterates in both modes, with the zero-copy
  accounting (``copies_avoided``) non-zero exactly when frames go
  out-of-band.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.runtime.wire import (
    FRAME_PREFIX,
    MAX_FRAME_BUFFER_BYTES,
    MAX_FRAME_BUFFERS,
    MAX_FRAME_HEAD_BYTES,
    BufferPool,
    FrameError,
    encode_frame,
    recv_frame,
    send_frame,
)

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _roundtrip(obj, *, zero_copy=True, transient=False, pool=None, key=None):
    """Send ``obj`` over a real socket pair, return ``(obj2, sinfo, rinfo)``.

    The sender runs on a thread so large frames can't deadlock on the
    pair's kernel buffers.
    """
    a, b = socket.socketpair()
    try:
        sinfo = {}

        def _send():
            sinfo.update(send_frame(a, obj, zero_copy=zero_copy, transient=transient))

        t = threading.Thread(target=_send)
        t.start()
        out, rinfo = recv_frame(b, pool=pool, key=key)
        t.join(timeout=30.0)
        assert not t.is_alive()
        return out, sinfo, rinfo
    finally:
        a.close()
        b.close()


def _feed_raw(payload: bytes):
    """A socket whose read side will see exactly ``payload`` then EOF."""
    a, b = socket.socketpair()
    try:
        a.sendall(payload)
        a.close()
        return b
    except BaseException:
        b.close()
        raise


def _assert_identical(x, y):
    """Structural bit-identity: arrays compared via raw bytes."""
    if isinstance(x, np.ndarray):
        assert isinstance(y, np.ndarray)
        assert x.dtype == y.dtype
        assert x.shape == y.shape
        assert np.asarray(x, order="C").tobytes() == np.asarray(y, order="C").tobytes()
    elif isinstance(x, (list, tuple)):
        assert type(x) is type(y) and len(x) == len(y)
        for xi, yi in zip(x, y):
            _assert_identical(xi, yi)
    elif isinstance(x, dict):
        assert set(x) == set(y)
        for k in x:
            _assert_identical(x[k], y[k])
    else:
        assert x == y


_DTYPES = st.sampled_from(
    [np.float64, np.float32, np.int64, np.int32, np.uint8, np.complex128, np.bool_]
)

_ARRAYS = _DTYPES.flatmap(
    lambda dt: hnp.arrays(
        dtype=dt,
        shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=0, max_side=6),
    )
)


# ---------------------------------------------------------------------------
# round-trip properties
# ---------------------------------------------------------------------------


class TestRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(arr=_ARRAYS, order=st.sampled_from(["C", "F"]), zero=st.booleans())
    def test_array_roundtrip_bit_identical(self, arr, order, zero):
        arr = np.asarray(arr, order=order)
        out, sinfo, rinfo = _roundtrip(("done", 3, 1, arr, 0.5), zero_copy=zero)
        verb, epoch, block, arr2, dt = out
        assert (verb, epoch, block, dt) == ("done", 3, 1, 0.5)
        _assert_identical(arr, arr2)
        assert sinfo["payload"] == rinfo["payload"]
        if not zero:
            assert sinfo["oob_buffers"] == 0 and rinfo["oob_bytes"] == 0

    @settings(max_examples=25, deadline=None)
    @given(
        payload=st.recursive(
            st.one_of(
                _ARRAYS,
                st.integers(-(2**40), 2**40),
                st.floats(allow_nan=False),
                st.text(max_size=8),
                st.none(),
            ),
            lambda inner: st.one_of(
                st.lists(inner, max_size=3),
                st.dictionaries(st.text(max_size=4), inner, max_size=3),
                st.tuples(inner, inner),
            ),
            max_leaves=6,
        ),
        zero=st.booleans(),
    )
    def test_nested_object_roundtrip(self, payload, zero):
        out, _, _ = _roundtrip(payload, zero_copy=zero)
        _assert_identical(payload, out)

    def test_timing_split_present(self):
        _, sinfo, _ = _roundtrip(np.arange(1024.0))
        assert sinfo["serialize_seconds"] >= 0.0
        assert sinfo["transmit_seconds"] > 0.0
        assert sinfo["t_transmit"] >= sinfo["t_serialize"]

    def test_zero_copy_goes_out_of_band(self):
        arr = np.arange(4096.0)
        out, sinfo, rinfo = _roundtrip(("solve", 0, 2, arr))
        assert sinfo["oob_buffers"] >= 1
        assert sinfo["oob_bytes"] >= arr.nbytes
        assert rinfo["oob_bytes"] == sinfo["oob_bytes"]
        _assert_identical(arr, out[3])

    def test_pickled_mode_is_in_band(self):
        segments, payload, oob, nbuf = encode_frame(np.arange(64.0), zero_copy=False)
        assert oob == 0 and nbuf == 0
        assert len(segments) == 1  # one concatenated blob, like the seed

    def test_pooled_receive_backs_arrays(self):
        pool = BufferPool(depth=4)
        arr = np.arange(512.0)
        out, _, _ = _roundtrip(
            ("done", 0, 0, arr, 0.0), transient=True, pool=pool, key=7
        )
        _assert_identical(arr, out[3])
        # a second frame of the same key lands in a *different* slot, so
        # the first piece stays intact
        out2, _, _ = _roundtrip(
            ("done", 1, 0, arr + 1.0, 0.0), transient=True, pool=pool, key=7
        )
        _assert_identical(arr, out[3])
        _assert_identical(arr + 1.0, out2[3])

    def test_non_transient_frames_skip_pool(self):
        pool = BufferPool(depth=2)
        arr = np.arange(64.0)
        _roundtrip(("attach", arr), transient=False, pool=pool, key="x")
        assert pool._slots == {}


# ---------------------------------------------------------------------------
# malformed frames
# ---------------------------------------------------------------------------


class TestMalformedFrames:
    def test_frame_error_is_connection_error(self):
        assert issubclass(FrameError, ConnectionError)

    def test_truncated_prefix(self):
        sock = _feed_raw(b"\x00\x01\x02")
        try:
            with pytest.raises(FrameError):
                recv_frame(sock)
        finally:
            sock.close()

    @settings(max_examples=30, deadline=None)
    @given(cut=st.integers(min_value=0, max_value=200), data=st.data())
    def test_truncated_stream_rejected(self, cut, data):
        arr = np.arange(16.0)
        segments, _, _, _ = encode_frame(("done", 0, 0, arr, 0.1))
        wire = b"".join(bytes(s) for s in segments)
        cut = min(cut, len(wire) - 1)
        sock = _feed_raw(wire[:cut])
        try:
            with pytest.raises(FrameError):
                recv_frame(sock)
        finally:
            sock.close()

    def test_oversized_head_rejected(self):
        prefix = FRAME_PREFIX.pack(MAX_FRAME_HEAD_BYTES + 1, 0, 0)
        sock = _feed_raw(prefix)
        try:
            with pytest.raises(FrameError, match="head"):
                recv_frame(sock)
        finally:
            sock.close()

    def test_oversized_buffer_count_rejected(self):
        prefix = FRAME_PREFIX.pack(8, MAX_FRAME_BUFFERS + 1, 0)
        sock = _feed_raw(prefix)
        try:
            with pytest.raises(FrameError, match="buffers"):
                recv_frame(sock)
        finally:
            sock.close()

    def test_oversized_buffer_length_rejected(self):
        prefix = FRAME_PREFIX.pack(8, 1, 0) + struct.pack(
            "!Q", MAX_FRAME_BUFFER_BYTES + 1
        )
        sock = _feed_raw(prefix)
        try:
            with pytest.raises(FrameError, match="buffer"):
                recv_frame(sock)
        finally:
            sock.close()

    @settings(max_examples=30, deadline=None)
    @given(junk=st.binary(min_size=1, max_size=64))
    def test_garbage_head_rejected(self, junk):
        try:
            pickle.loads(junk)
            return  # astronomically unlikely: junk that *is* a pickle
        except Exception:
            pass
        frame = FRAME_PREFIX.pack(len(junk), 0, 0) + junk
        sock = _feed_raw(frame)
        try:
            with pytest.raises(FrameError, match="undecodable"):
                recv_frame(sock)
        finally:
            sock.close()

    def test_too_many_buffers_rejected_on_send(self):
        arrs = [np.zeros(1) for _ in range(MAX_FRAME_BUFFERS + 1)]
        with pytest.raises(FrameError):
            encode_frame(arrs)


# ---------------------------------------------------------------------------
# BufferPool
# ---------------------------------------------------------------------------


class TestBufferPool:
    def test_rotation_reuses_slots(self):
        pool = BufferPool(depth=2)
        b1 = pool.take("k", 64)
        b2 = pool.take("k", 64)
        b3 = pool.take("k", 64)
        assert b1 is not b2
        assert b3 is b1  # depth-2 rotation wrapped around

    def test_size_change_reallocates(self):
        pool = BufferPool(depth=2)
        b1 = pool.take("k", 64)
        pool.take("k", 64)
        b3 = pool.take("k", 128)
        assert b3 is not b1 and len(b3) == 128

    def test_keys_are_independent(self):
        pool = BufferPool(depth=2)
        assert pool.take("a", 8) is not pool.take("b", 8)

    def test_min_depth_enforced(self):
        with pytest.raises(ValueError):
            BufferPool(depth=1)

    def test_clear_drops_slots(self):
        pool = BufferPool()
        b1 = pool.take("k", 8)
        pool.clear()
        b2 = pool.take("k", 8)
        assert b2 is not b1


# ---------------------------------------------------------------------------
# executor-level contract
# ---------------------------------------------------------------------------


def _executor_problem(n=96, L=4, seed=5):
    from repro.core import make_weighting, uniform_bands
    from repro.matrices import diagonally_dominant, rhs_for_solution

    A = diagonally_dominant(n, dominance=1.5, bandwidth=4, seed=seed)
    b, _ = rhs_for_solution(A, seed=seed + 1)
    part = uniform_bands(n, L).to_general()
    return A, b, part, make_weighting("ownership", part)


class TestSocketExecutorProtocols:
    @pytest.mark.parametrize("protocol", ["zerocopy", "pickled"])
    def test_bit_identical_vs_inline(self, protocol):
        from repro.core import multisplitting_iterate
        from repro.core.stopping import StoppingCriterion
        from repro.direct import get_solver
        from repro.runtime import SocketExecutor
        from repro.runtime.inline import InlineExecutor

        A, b, part, scheme = _executor_problem()
        stopping = StoppingCriterion(tolerance=1e-300, max_iterations=6)
        ref = multisplitting_iterate(
            A, b, part, scheme, get_solver("scipy"),
            stopping=stopping, executor=InlineExecutor(),
        )
        with SocketExecutor(workers=2, wire_protocol=protocol) as ex:
            res = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"),
                stopping=stopping, executor=ex,
            )
            wire = ex.wire_stats()
        assert res.history == ref.history
        np.testing.assert_array_equal(res.x, ref.x)
        assert wire["wire_protocol"] == protocol
        assert wire["serialize_seconds"] > 0.0
        assert wire["transmit_seconds"] > 0.0
        if protocol == "zerocopy":
            assert wire["copies_avoided"] > 0
        else:
            assert wire["copies_avoided"] == 0

    def test_unknown_protocol_rejected(self):
        from repro.runtime import SocketExecutor

        with pytest.raises(ValueError, match="wire_protocol"):
            SocketExecutor(workers=1, wire_protocol="carrier-pigeon")

    def test_spec_bytes_shared_across_respawn(self):
        """Recovery re-sends a worker's solve spec from the pickle cache."""
        from repro.direct import get_solver
        from repro.runtime import FaultPolicy, SocketExecutor

        A, b, part, _ = _executor_problem()
        ex = SocketExecutor(workers=2)
        try:
            ex.attach(
                A, b, part.sets, get_solver("scipy"),
                fault_policy=FaultPolicy(heartbeat_interval=0.1, respawn=True),
            )
            assert ex.wire_stats()["spec_pickles_reused"] == 0
            victim = ex._procs[0]
            victim.kill()
            victim.join(timeout=10.0)
            z = np.zeros(b.shape)
            ex.solve_round([z] * part.nprocs)  # triggers detect + respawn
            assert ex.wire_stats()["spec_pickles_reused"] >= 1
        finally:
            ex.close()


# ---------------------------------------------------------------------------
# absolute receive deadlines + the window/pool-depth contract
# ---------------------------------------------------------------------------


class TestReceiveDeadline:
    """recv_frame's deadline is an *absolute* monotonic bound."""

    def test_generous_deadline_receives_normally(self):
        import time

        obj = {"x": np.arange(32.0)}
        a, b = socket.socketpair()
        try:
            t = threading.Thread(target=lambda: send_frame(a, obj))
            t.start()
            out, _ = recv_frame(b, deadline=time.monotonic() + 30.0)
            t.join(timeout=30.0)
            _assert_identical(out, obj)
        finally:
            a.close()
            b.close()

    def test_expired_deadline_fails_fast(self):
        import time

        a, b = socket.socketpair()
        try:
            a.sendall(b"\x00\x01")  # data waiting changes nothing
            with pytest.raises(FrameError, match="deadline"):
                recv_frame(b, deadline=time.monotonic() - 1.0)
        finally:
            a.close()
            b.close()

    def test_trickling_sender_cannot_extend_the_bound(self):
        """The hole the deadline closes: a per-syscall timeout restarts
        whenever any byte arrives, so a peer dribbling one byte per
        interval could wedge the driver forever while looking alive.
        The absolute bound expires regardless of arrival rate."""
        import time

        segments, _, _, _ = encode_frame({"x": np.arange(512.0)})
        payload = b"".join(bytes(s) for s in segments)
        a, b = socket.socketpair()
        stop = threading.Event()

        def _trickle():
            for i in range(len(payload)):
                if stop.is_set():
                    return
                try:
                    a.sendall(payload[i : i + 1])
                except OSError:
                    return
                time.sleep(0.02)

        t = threading.Thread(target=_trickle, daemon=True)
        t.start()
        try:
            t0 = time.monotonic()
            with pytest.raises(FrameError, match="deadline"):
                recv_frame(b, deadline=t0 + 0.3)
            elapsed = time.monotonic() - t0
            # Bytes kept arriving every 20 ms; only the absolute bound
            # can have fired, and promptly.
            assert elapsed < 5.0
        finally:
            stop.set()
            a.close()
            b.close()
            t.join(timeout=10.0)


class TestWindowPoolContract:
    """The pipelined window and the BufferPool depth are one invariant."""

    def test_default_depth_is_the_shared_constant(self):
        from repro.runtime.wire import DEFAULT_POOL_DEPTH

        pool = BufferPool()
        assert pool.depth == DEFAULT_POOL_DEPTH

    def test_shipped_constants_satisfy_the_spec(self):
        from repro.check.invariants import window_within_pool
        from repro.core.sequential import _PIPELINE_WINDOW
        from repro.runtime.wire import DEFAULT_POOL_DEPTH

        assert window_within_pool(_PIPELINE_WINDOW, DEFAULT_POOL_DEPTH) is None

    def test_pipelined_driver_refuses_bad_window(self, monkeypatch):
        """The construction-time guard: window == depth must fail loudly
        before any round runs (the model shows the torn fold it would
        otherwise reintroduce -- see pipeline.window-eq-depth)."""
        import repro.core.sequential as seq
        from repro.core import make_weighting, multisplitting_iterate, uniform_bands
        from repro.core.stopping import StoppingCriterion
        from repro.direct import get_solver
        from repro.matrices import diagonally_dominant, rhs_for_solution
        from repro.runtime.wire import DEFAULT_POOL_DEPTH

        monkeypatch.setattr(seq, "_PIPELINE_WINDOW", DEFAULT_POOL_DEPTH)
        A, b, part, scheme = _executor_problem()
        with pytest.raises(RuntimeError, match="pipelined dispatch misconfigured"):
            multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"),
                stopping=StoppingCriterion(tolerance=1e-300, max_iterations=2),
                dispatch="pipelined",
            )
