"""Tests for MPI-like collectives and the trace recorder."""

import numpy as np
import pytest

from repro.grid import (
    TraceRecorder,
    allgather,
    allreduce_logical_and,
    allreduce_sum,
    barrier,
    bcast,
    cluster1,
    gather,
    max_norm_distributed,
    reduce_sum,
    vector_bytes,
)


def run_collective(nprocs, body):
    """Spawn `body` on every host of a cluster1(nprocs) and return results."""
    cluster = cluster1(nprocs)
    eng = cluster.make_engine()
    for h in cluster.hosts:
        eng.spawn(body, h)
    eng.run()
    return eng.results()


class TestCollectives:
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 5, 8])
    def test_bcast_all_ranks_receive(self, nprocs):
        def body(ctx):
            value = "payload" if ctx.rank == 0 else None
            out = yield from bcast(ctx, value, root=0, nbytes=128)
            return out

        assert run_collective(nprocs, body) == ["payload"] * nprocs

    def test_bcast_nonzero_root(self):
        def body(ctx):
            value = ctx.rank if ctx.rank == 2 else None
            out = yield from bcast(ctx, value, root=2)
            return out

        assert run_collective(5, body) == [2] * 5

    @pytest.mark.parametrize("nprocs", [1, 2, 4, 7])
    def test_gather(self, nprocs):
        def body(ctx):
            out = yield from gather(ctx, ctx.rank * 10, root=0)
            return out

        results = run_collective(nprocs, body)
        assert results[0] == [r * 10 for r in range(nprocs)]
        assert all(r is None for r in results[1:])

    def test_allgather(self):
        def body(ctx):
            out = yield from allgather(ctx, ctx.rank**2)
            return out

        results = run_collective(4, body)
        assert all(r == [0, 1, 4, 9] for r in results)

    def test_reduce_and_allreduce_sum(self):
        def body(ctx):
            partial = yield from reduce_sum(ctx, ctx.rank + 1, root=0)
            total = yield from allreduce_sum(ctx, ctx.rank + 1)
            return (partial, total)

        results = run_collective(5, body)
        assert results[0][0] == 15
        assert all(r[1] == 15 for r in results)

    def test_allreduce_logical_and(self):
        def body(ctx):
            all_true = yield from allreduce_logical_and(ctx, True)
            mixed = yield from allreduce_logical_and(ctx, ctx.rank != 1)
            return (all_true, mixed)

        results = run_collective(4, body)
        assert all(r == (True, False) for r in results)

    def test_barrier_synchronizes(self):
        def body(ctx):
            yield ctx.sleep(float(ctx.rank))  # stagger arrivals
            yield from barrier(ctx)
            return ctx.now

        times = run_collective(4, body)
        # everyone leaves the barrier at (or after) the last arrival
        assert min(times) >= 3.0

    def test_back_to_back_collectives_do_not_cross(self):
        def body(ctx):
            a = yield from allreduce_sum(ctx, 1)
            b = yield from allreduce_sum(ctx, 100)
            return (a, b)

        results = run_collective(6, body)
        assert all(r == (6, 600) for r in results)

    def test_max_norm_distributed(self):
        def body(ctx):
            piece = np.array([float(ctx.rank), -2.0 * ctx.rank])
            out = yield from max_norm_distributed(ctx, piece)
            return out

        results = run_collective(4, body)
        assert all(r == 6.0 for r in results)

    def test_vector_bytes(self):
        assert vector_bytes(0) == 64
        assert vector_bytes(100) == 864


class TestTrace:
    def test_trace_counts_events(self):
        cluster = cluster1(2)
        rec = TraceRecorder()
        eng = cluster.make_engine(trace=rec)

        def a(ctx):
            yield ctx.compute(cluster.hosts[0].speed)  # 1 second
            yield ctx.send(1, nbytes=1000, tag=0)

        def b(ctx):
            yield ctx.recv()

        eng.spawn(a, cluster.hosts[0])
        eng.spawn(b, cluster.hosts[1])
        eng.run()
        stats = rec.stats()
        assert stats.messages == 1
        assert stats.bytes_sent == 1000
        assert stats.total_compute_time == pytest.approx(1.0)
        assert stats.compute_time_by_pid[0] == pytest.approx(1.0)
        assert stats.bytes_by_pair[(0, 1)] == 1000
        assert stats.makespan > 1.0

    def test_event_retention_cap(self):
        rec = TraceRecorder(keep_events=3)
        for i in range(10):
            rec("send", float(i), src=0, dst=1, nbytes=1)
        assert len(rec.events) == 3
        assert rec.stats().messages == 10

    def test_events_of_kind(self):
        rec = TraceRecorder()
        rec("compute", 0.0, pid=0, duration=1.0)
        rec("send", 1.0, src=0, dst=1, nbytes=5)
        assert len(rec.events_of_kind("compute")) == 1
        assert rec.events_of_kind("send")[0].get("nbytes") == 5
        assert rec.events_of_kind("send")[0].get("missing", -1) == -1

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder(keep_events=-1)
