"""Extended engine tests: coalescing sends, run limits, dynamic host load."""

import numpy as np
import pytest

from repro.grid import Host, cluster1, custom_cluster


class TestCoalescingSends:
    def _two_hosts(self):
        c = custom_cluster("two", {"a": [1e8], "b": [1e8]})
        return c, c.make_engine()

    def test_in_flight_payload_superseded(self):
        """A newer coalesced send replaces the payload of one in flight."""
        c, eng = self._two_hosts()

        def sender(ctx):
            for i in range(5):
                yield ctx.send(1, nbytes=100_000, payload=i, tag="t", coalesce=True)
            yield ctx.sleep(10.0)
            yield ctx.send(1, nbytes=100_000, payload="final", tag="t", coalesce=True)

        def receiver(ctx):
            got = []
            while len(got) < 2:
                msg = yield ctx.try_recv(tag="t")
                if msg is not None:
                    got.append(msg.payload)
                else:
                    yield ctx.sleep(0.01)
            return got

        eng.spawn(sender, c.hosts[0])
        eng.spawn(receiver, c.hosts[1])
        eng.run()
        got = eng.results()[1]
        # the five rapid sends collapse into ONE delivery carrying the
        # newest payload; the late send arrives separately
        assert got == [4, "final"]

    def test_coalescing_bounds_traffic(self):
        c, eng = self._two_hosts()

        def sender(ctx):
            for i in range(50):
                yield ctx.send(1, nbytes=50_000, payload=i, tag="t", coalesce=True)

        def receiver(ctx):
            count = 0
            for _ in range(200):
                msg = yield ctx.try_recv(tag="t")
                if msg is not None:
                    count += 1
                yield ctx.sleep(0.01)
            return count

        eng.spawn(sender, c.hosts[0])
        eng.spawn(receiver, c.hosts[1])
        eng.run()
        assert eng.results()[1] == 1  # one in-flight slot -> one delivery
        assert c.hosts[0].messages_sent == 1

    def test_distinct_tags_not_coalesced(self):
        c, eng = self._two_hosts()

        def sender(ctx):
            yield ctx.send(1, nbytes=10_000, payload="a", tag="t1", coalesce=True)
            yield ctx.send(1, nbytes=10_000, payload="b", tag="t2", coalesce=True)

        def receiver(ctx):
            m1 = yield ctx.recv(tag="t1")
            m2 = yield ctx.recv(tag="t2")
            return (m1.payload, m2.payload)

        eng.spawn(sender, c.hosts[0])
        eng.spawn(receiver, c.hosts[1])
        eng.run()
        assert eng.results()[1] == ("a", "b")

    def test_non_coalesced_sends_all_arrive(self):
        c, eng = self._two_hosts()

        def sender(ctx):
            for i in range(4):
                yield ctx.send(1, nbytes=10_000, payload=i, tag="t")

        def receiver(ctx):
            got = []
            for _ in range(4):
                msg = yield ctx.recv(tag="t")
                got.append(msg.payload)
            return sorted(got)

        eng.spawn(sender, c.hosts[0])
        eng.spawn(receiver, c.hosts[1])
        eng.run()
        assert eng.results()[1] == [0, 1, 2, 3]


class TestRunLimits:
    def test_until_stops_clock(self):
        c = cluster1(1)
        eng = c.make_engine()

        def proc(ctx):
            yield ctx.sleep(100.0)
            return "done"

        eng.spawn(proc, c.hosts[0])
        eng.run(until=1.0)
        assert eng.now == 1.0
        assert eng.results()[0] is None  # never finished

    def test_max_events(self):
        c = cluster1(1)
        eng = c.make_engine()

        def proc(ctx):
            for _ in range(100):
                yield ctx.sleep(0.1)

        eng.spawn(proc, c.hosts[0])
        eng.run(max_events=5)
        assert eng.now < 1.0


class TestDynamicLoad:
    def test_rate_integration(self):
        h = Host(name="h", site="s", speed=100.0, memory_bytes=1)
        h.add_load(1.0, 3.0, 0.5)
        # 100 flops at t=0: 1s at full rate (100 done)
        assert h.compute_finish(0.0, 100.0) == pytest.approx(1.0)
        # 150 flops at t=0: 100 by t=1, then 50 at rate 50 -> t=2
        assert h.compute_finish(0.0, 150.0) == pytest.approx(2.0)
        # starting inside the window
        assert h.compute_finish(1.0, 100.0) == pytest.approx(3.0)
        # after the window everything is full rate again
        assert h.compute_finish(3.0, 100.0) == pytest.approx(4.0)

    def test_overlapping_windows_multiply(self):
        h = Host(name="h", site="s", speed=100.0, memory_bytes=1)
        h.add_load(0.0, 10.0, 0.5)
        h.add_load(0.0, 10.0, 0.5)
        assert h._rate_at(0.0) == pytest.approx(25.0)

    def test_validation(self):
        h = Host(name="h", site="s", speed=1.0, memory_bytes=1)
        with pytest.raises(ValueError):
            h.add_load(1.0, 1.0, 0.5)
        with pytest.raises(ValueError):
            h.add_load(0.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            h.add_load(0.0, 1.0, 2.0)
        with pytest.raises(ValueError):
            h.compute_finish(0.0, -1.0)

    def test_loaded_host_slows_simulated_compute(self):
        c = cluster1(1)
        host = c.hosts[0]
        host.add_load(0.0, 100.0, 0.25)
        eng = c.make_engine()

        def proc(ctx):
            yield ctx.compute(host.speed * 1.0)  # 1s of work at full rate
            return ctx.now

        eng.spawn(proc, host)
        eng.run()
        assert eng.results()[0] == pytest.approx(4.0)

    def test_solver_survives_dynamic_load(self):
        """A machine that slows down mid-run delays but does not break the solve."""
        from repro.core import MultisplittingSolver
        from repro.matrices import diagonally_dominant, rhs_for_solution

        A = diagonally_dominant(150, dominance=1.5, bandwidth=10, seed=1)
        b, x_true = rhs_for_solution(A, seed=2)

        def run(loaded):
            cluster = cluster1(4)
            if loaded:
                cluster.hosts[2].add_load(0.0, 1e9, 0.1)
            s = MultisplittingSolver(mode="synchronous")
            return s.solve(A, b, cluster=cluster)

        fast = run(False)
        slow = run(True)
        assert slow.status == "ok"
        assert slow.simulated_time > fast.simulated_time
        assert np.max(np.abs(slow.x - x_true)) < 1e-6
