"""Tests for the dense LU kernel (repro.direct.dense)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.direct import DenseLU, SingularMatrixError, get_solver, lu_decompose
from repro.matrices import diagonally_dominant


def random_nonsingular(n, seed):
    rng = np.random.default_rng(seed)
    A = rng.uniform(-1, 1, size=(n, n))
    A += n * np.eye(n)  # safely nonsingular
    return A


class TestLuDecompose:
    def test_reconstruction_pa_lu(self):
        A = random_nonsingular(8, 0)
        solver = DenseLU()
        f = solver.factor(A)
        PA = A[f.permutation]
        np.testing.assert_allclose(f.L @ f.U, PA, atol=1e-10)

    def test_pivoting_handles_zero_leading_entry(self):
        A = np.array([[0.0, 1.0], [1.0, 0.0]])
        x = DenseLU().solve(A, np.array([2.0, 3.0]))
        np.testing.assert_allclose(x, [3.0, 2.0])

    def test_singular_matrix_raises(self):
        A = np.array([[1.0, 2.0], [2.0, 4.0]])
        with pytest.raises(SingularMatrixError):
            DenseLU().factor(A)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            lu_decompose(np.ones((2, 3)))

    def test_flops_counted_match_order_n_cubed(self):
        f1 = DenseLU().factor(random_nonsingular(20, 1))
        f2 = DenseLU().factor(random_nonsingular(40, 1))
        ratio = f2.stats.factor_flops / f1.stats.factor_flops
        assert 6.0 < ratio < 10.0  # ~2^3 = 8

    def test_stats_fields(self):
        A = random_nonsingular(10, 2)
        st_ = DenseLU().factor(A).stats
        assert st_.n == 10
        assert st_.nnz_factors == 100
        assert st_.memory_bytes >= 800
        assert st_.solve_flops == 200.0


class TestSolve:
    def test_solve_matches_numpy(self):
        A = random_nonsingular(15, 3)
        b = np.arange(15.0)
        x = DenseLU().solve(A, b)
        np.testing.assert_allclose(x, np.linalg.solve(A, b), atol=1e-9)

    def test_solve_sparse_input(self):
        import scipy.sparse as sp

        A = diagonally_dominant(25, seed=4)
        b = np.ones(25)
        x = DenseLU().solve(sp.csr_matrix(A), b)
        np.testing.assert_allclose(A @ x, b, atol=1e-9)

    def test_rhs_shape_check(self):
        f = DenseLU().factor(np.eye(3))
        with pytest.raises(ValueError):
            f.solve(np.ones(4))

    def test_reuse_factorization_many_rhs(self):
        A = random_nonsingular(10, 5)
        f = DenseLU().factor(A)
        for seed in range(4):
            b = np.random.default_rng(seed).random(10)
            np.testing.assert_allclose(f.solve(b), np.linalg.solve(A, b), atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 25), st.integers(0, 1000))
    def test_property_residual_small(self, n, seed):
        A = random_nonsingular(n, seed)
        b = np.random.default_rng(seed + 1).random(n)
        x = DenseLU().solve(A, b)
        assert np.max(np.abs(A @ x - b)) < 1e-8 * max(1.0, np.max(np.abs(b)))


class TestRegistry:
    def test_get_solver_by_name(self):
        s = get_solver("dense", pivot_tol=1e-14)
        assert isinstance(s, DenseLU)
        assert s.pivot_tol == 1e-14

    def test_negative_pivot_tol_rejected(self):
        with pytest.raises(ValueError):
            DenseLU(pivot_tol=-1.0)
