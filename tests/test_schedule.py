"""The placement/scheduling subsystem: plans, planners, calibration.

Covers the tentpole invariants:

* :func:`cost_balanced_bands` equalises estimated per-band time, not
  row counts -- faster workers get more rows, comm-taxed workers fewer;
* a :class:`Placement` validates itself, lowers to the exact
  :class:`BandPartition` it prescribes, and round-trips its summary;
* cluster plans read host speeds and sites from the topology, and the
  ``"calibrated"`` strategy shrinks the bands that sit behind the WAN;
* live calibration measures relative worker speeds through the public
  Executor contract, and the same plan drives both the simulated host
  mapping and the real executors (shared-plan end-to-end checks).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import make_weighting, multisplitting_iterate, run_synchronous
from repro.core.distributed import placement_for
from repro.core.partition import cost_balanced_bands, proportional_bands
from repro.direct import get_solver
from repro.grid import cluster1, cluster2, cluster3
from repro.matrices import diagonally_dominant, rhs_for_solution
from repro.runtime import InlineExecutor, ThreadExecutor
from repro.schedule import (
    Placement,
    WorkerSlot,
    calibrated_placement,
    cluster_placement,
    cost_model_placement,
    iteration_cost_model,
    measure_worker_speeds,
    proportional_placement,
    uniform_placement,
)


def _problem(n=96, L=4, seed=5):
    A = diagonally_dominant(n, dominance=1.5, bandwidth=4, seed=seed)
    b, _ = rhs_for_solution(A, seed=seed + 1)
    return A, b


class TestCostBalancedBands:
    def test_equal_speeds_near_uniform(self):
        band = cost_balanced_bands(100, [1.0, 1.0, 1.0, 1.0])
        sizes = [stop - start for start, stop in band.bounds]
        assert sum(sizes) == 100
        assert max(sizes) - min(sizes) <= 1

    def test_linear_cost_tracks_speed_ratios(self):
        band = cost_balanced_bands(300, [1.0, 2.0])
        sizes = [stop - start for start, stop in band.bounds]
        assert sizes[1] == pytest.approx(2 * sizes[0], rel=0.05)

    def test_fixed_comm_cost_shrinks_taxed_band(self):
        """Two equal workers, one behind an expensive link: its band
        shrinks so compute absorbs the fixed communication charge."""
        free = cost_balanced_bands(200, [1.0, 1.0])
        taxed = cost_balanced_bands(
            200, [1.0, 1.0], cost=lambda s: float(s), fixed=[0.0, 50.0]
        )
        free_sizes = [stop - start for start, stop in free.bounds]
        taxed_sizes = [stop - start for start, stop in taxed.bounds]
        assert taxed_sizes[1] < free_sizes[1]
        assert sum(taxed_sizes) == 200

    def test_superlinear_cost_flattens_spread(self):
        """With cost ~ s^3 (dense kernels) the size spread between fast
        and slow workers is much smaller than the raw speed ratio."""
        cubic = cost_balanced_bands(300, [1.0, 8.0], cost=lambda s: float(s) ** 3)
        sizes = [stop - start for start, stop in cubic.bounds]
        assert sizes[1] < 2.5 * sizes[0]  # cube root of 8, not 8x

    def test_every_band_nonempty_and_validated(self):
        band = cost_balanced_bands(10, [1e-6, 1.0, 1.0], fixed=[5.0, 0.0, 0.0])
        sizes = [stop - start for start, stop in band.bounds]
        assert min(sizes) >= 1 and sum(sizes) == 10
        with pytest.raises(ValueError):
            cost_balanced_bands(3, [1.0] * 5)
        with pytest.raises(ValueError):
            cost_balanced_bands(10, [1.0, -1.0])
        with pytest.raises(ValueError):
            cost_balanced_bands(10, [1.0, 1.0], fixed=[0.0])


class TestPlacementPlan:
    def test_partition_round_trip(self):
        plan = proportional_placement(100, [1.0, 3.0], overlap=2)
        part = plan.partition()
        assert part.n == 100 and part.overlap == 2
        assert [stop - start for start, stop in part.bounds] == list(plan.sizes)
        # matches the classic builder exactly (legacy compatibility)
        legacy = proportional_bands(100, [1.0, 3.0], overlap=2)
        assert part.bounds == legacy.bounds

    def test_validation(self):
        w = (WorkerSlot(name="a"), WorkerSlot(name="b"))
        with pytest.raises(ValueError, match="cover"):
            Placement(strategy="x", n=10, workers=w, sizes=(4, 4), assignment=(0, 1))
        with pytest.raises(ValueError, match="assignment"):
            Placement(strategy="x", n=10, workers=w, sizes=(5, 5), assignment=(0,))
        with pytest.raises(ValueError, match="unknown worker"):
            Placement(strategy="x", n=10, workers=w, sizes=(5, 5), assignment=(0, 2))
        with pytest.raises(ValueError, match="speed"):
            WorkerSlot(name="bad", speed=0.0)

    def test_summary_and_groups(self):
        plan = Placement(
            strategy="hand",
            n=12,
            workers=(
                WorkerSlot(name="a", group="siteA"),
                WorkerSlot(name="b", group="siteA"),
                WorkerSlot(name="c", group="siteB"),
            ),
            sizes=(4, 4, 4),
            assignment=(0, 1, 2),
        )
        assert plan.colocation_groups() == {"siteA": [0, 1], "siteB": [2]}
        s = plan.summary()
        assert s["strategy"] == "hand" and s["sizes"] == [4, 4, 4]
        assert plan.worker_of(2).name == "c"


class TestGeneralPlans:
    """Placement.layout: plans that schedule arbitrary index sets."""

    def _part(self, n=40, L=4):
        from repro.core.partition import interleaved_partition

        return interleaved_partition(n, L, chunk=2)

    def test_with_layout_round_trip(self):
        part = self._part()
        plan = uniform_placement(40, 4).with_layout(part)
        assert plan.partition() is part
        assert plan.partition().to_general() is part
        assert plan.sizes == tuple(int(c.size) for c in part.core)
        assert plan.summary()["partition"] == "general"
        assert uniform_placement(40, 4).summary()["partition"] == "bands"

    def test_layout_validation(self):
        part = self._part()
        with pytest.raises(ValueError, match="core sizes"):
            Placement(
                strategy="x",
                n=40,
                workers=tuple(WorkerSlot(name=f"w{i}") for i in range(4)),
                sizes=(37, 1, 1, 1),
                assignment=(0, 1, 2, 3),
                layout=part,
            )
        with pytest.raises(ValueError, match="blocks"):
            uniform_placement(40, 2).with_layout(part)
        with pytest.raises(ValueError, match="overlap"):
            uniform_placement(40, 4).with_layout(part).partition(overlap=3)

    def test_partition_placement_over_cluster(self):
        from repro.schedule import partition_placement

        part = self._part()
        cluster = cluster3(4)
        plan = partition_placement(cluster, part)
        assert plan.layout is part
        assert plan.assignment == (0, 1, 2, 3)
        assert [w.name for w in plan.workers] == [
            h.name for h in cluster.hosts[:4]
        ]
        # calibrated: a deterministic one-block-per-host matching
        A, _ = _problem(n=40)
        cal = partition_placement(cluster, part, strategy="calibrated", A=A)
        assert sorted(cal.assignment) == [0, 1, 2, 3]
        again = partition_placement(cluster, part, strategy="calibrated", A=A)
        assert cal.assignment == again.assignment

    def test_cluster_placement_partition_kwarg(self):
        part = self._part()
        plan = cluster3(4).placement(40, strategy="proportional", partition=part)
        assert plan.layout is part
        assert plan.summary()["partition"] == "general"

    def test_schwarz_strategy_keeps_calibrated_sizes(self):
        """Schwarz is bands + overlap: a calibrated plan's cost-balanced
        core sizes must survive, only the extended sets grow."""
        from repro.core.solver import MultisplittingSolver

        A, b = _problem(n=200)
        cluster = cluster3(4)
        kwargs = dict(mode="synchronous", placement="calibrated")
        with MultisplittingSolver(4, **kwargs) as bands, MultisplittingSolver(
            4, partition_strategy="schwarz", weighting="schwarz", **kwargs
        ) as schwarz:
            r_band = bands.solve(A, b, cluster=cluster)
            r_schwarz = schwarz.solve(A, b, cluster=cluster)
        assert r_schwarz.converged
        assert r_schwarz.placement["sizes"] == r_band.placement["sizes"]
        assert r_schwarz.placement["partition"] == "general"

    def test_pattern_fixed_costs_feed_calibrated_bands(self):
        """cluster_placement(A=...) prices the real graph: a matrix whose
        long-range coupling taxes a band the nearest-neighbour formula
        thinks is cheap produces a different (pattern-aware) plan."""
        import scipy.sparse as sp

        n, L = 400, 4
        main = np.full(n, 4.0)
        off = np.full(n - 1, -1.0)
        A = sp.lil_matrix(sp.diags([off, main, off], offsets=(-1, 0, 1)))
        # band 0 reads strided columns everywhere: heavy fan-in the band
        # formula cannot see
        cols = list(range(150, n, 10))
        for r in range(0, 40, 2):
            A[r, cols] = -0.01
            A[r, r] += 0.01 * len(cols)
        A = A.tocsr()
        cluster = cluster3(L)
        blind = cluster_placement(cluster, L, strategy="calibrated", n=n)
        aware = cluster_placement(cluster, L, strategy="calibrated", n=n, A=A)
        assert sum(aware.sizes) == n
        assert aware.sizes != blind.sizes


class TestClusterPlacement:
    def test_proportional_matches_host_speeds(self):
        c = cluster2(8)
        plan = cluster_placement(c, 8, strategy="proportional", n=800)
        legacy = proportional_bands(800, [h.speed for h in c.hosts])
        assert plan.partition().bounds == legacy.bounds
        assert [w.name for w in plan.workers] == [h.name for h in c.hosts]
        assert set(plan.colocation_groups()) == {"site1"}

    def test_calibrated_shrinks_wan_boundary_bands(self):
        """On cluster3 the two bands straddling the inter-site link pay
        the WAN's latency+volume each iteration; the cost-model plan
        gives them fewer rows than raw speed proportionality would."""
        c = cluster3(10)
        prop = cluster_placement(c, 10, strategy="proportional", n=2000)
        cal = cluster_placement(c, 10, strategy="calibrated", n=2000)
        groups = cal.colocation_groups()
        assert set(groups) == {"siteA", "siteB"}
        boundary = len(groups["siteA"]) - 1  # last siteA worker
        for l in (boundary, boundary + 1):
            assert cal.sizes[l] < prop.sizes[l]

    def test_uniform_strategy(self):
        c = cluster1(5)
        plan = cluster_placement(c, 5, strategy="uniform", n=100)
        assert set(plan.sizes) == {20}

    def test_cluster_method_export(self):
        plan = cluster3(4).placement(400, strategy="calibrated")
        assert plan.strategy == "calibrated"
        assert plan.nblocks == 4

    def test_bad_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            cluster_placement(cluster1(2), 2, strategy="magic", n=10)


class TestPlacementForHosts:
    def test_plan_orders_hosts_by_name(self):
        c = cluster2(4)
        plan = cluster_placement(c, 4, strategy="proportional", n=100)
        hosts = placement_for(c, 4, plan=plan)
        assert [h.name for h in hosts] == [w.name for w in plan.workers]

    def test_generic_plan_falls_back_positional(self):
        c = cluster1(3)
        plan = uniform_placement(90, 3)  # generic worker names
        assert placement_for(c, 3, plan=plan) == c.hosts[:3]

    def test_block_count_mismatch_rejected(self):
        c = cluster1(3)
        plan = uniform_placement(90, 2)
        with pytest.raises(ValueError, match="placement"):
            placement_for(c, 3, plan=plan)

    def test_cross_topology_plan_rejected(self):
        """A plan that names SOME of the cluster's hosts but not all was
        built from a different topology; it must raise, not silently
        mis-map bands positionally."""
        from repro.grid import custom_cluster

        plan = cluster_placement(cluster2(4), 4, strategy="proportional", n=100)
        speed = cluster2(4).hosts[0].speed
        mixed = custom_cluster("mixed", {"site1": [speed] * 2, "siteZ": [speed] * 2})
        with pytest.raises(ValueError, match="another topology"):
            placement_for(mixed, 4, plan=plan)


class _HandicappedInline(InlineExecutor):
    """Inline executor whose slot ``l`` repeats each solve ``factor`` times
    (a deterministic stand-in for a slow / nice-d worker)."""

    def __init__(self, factors):
        super().__init__()
        self.factors = factors

    def _timed_solve(self, l, z):
        worker = self._placement.assignment[l] if self._placement else l
        total = 0.0
        for _ in range(self.factors[worker]):
            piece, dt = super()._timed_solve(l, z)
            total += dt
        return piece, total


class TestCalibration:
    def test_measured_speeds_rank_workers(self):
        ex = _HandicappedInline((1, 12))
        try:
            speeds = measure_worker_speeds(ex, 2, probe_size=192, repeats=4)
        finally:
            ex.close()
        assert len(speeds) == 2
        assert speeds[0] > speeds[1]
        assert np.isclose(np.mean(speeds), 1.0)

    def test_calibrated_plan_feeds_cost_model(self):
        ex = _HandicappedInline((1, 12))
        try:
            plan = calibrated_placement(ex, 400, 2, probe_size=192, repeats=4)
        finally:
            ex.close()
        assert plan.nblocks == 2 and sum(plan.sizes) == 400
        assert plan.sizes[0] > plan.sizes[1]  # slow worker gets fewer rows

    def test_probe_validation(self):
        ex = InlineExecutor()
        with pytest.raises(ValueError):
            measure_worker_speeds(ex, 0)
        with pytest.raises(ValueError):
            measure_worker_speeds(ex, 2, repeats=0)

    def test_poisoned_round_cannot_break_the_outlier_guard(self):
        """Regression: a NaN round delta (clock anomaly, worker restart
        mid-probe) used to poison the worker's median -- every comparison
        with NaN is False, the guard discarded *all* samples, and the
        mean divided by zero.  The guard must drop non-finite samples and
        still return finite positive speeds."""

        class _PoisonedInline(InlineExecutor):
            def __init__(self):
                super().__init__()
                self.calls = 0

            def block_seconds(self):
                out = dict(super().block_seconds())
                self.calls += 1
                if self.calls == 2:  # second snapshot: one NaN delta pair
                    out[1] = float("nan")
                return out

        ex = _PoisonedInline()
        try:
            speeds = measure_worker_speeds(ex, 2, probe_size=64, repeats=4)
        finally:
            ex.close()
        assert len(speeds) == 2
        assert all(np.isfinite(s) and s > 0 for s in speeds)
        assert np.isclose(np.mean(speeds), 1.0)

    def test_single_poisoned_round_with_repeats_one(self):
        """The degenerate case: every sample non-finite (here: the only
        one).  The fallback keeps the estimate finite instead of raising
        ZeroDivisionError."""

        class _AllNaNInline(InlineExecutor):
            def block_seconds(self):
                return {w: float("nan") for w in super().block_seconds()}

        ex = _AllNaNInline()
        try:
            speeds = measure_worker_speeds(ex, 2, probe_size=64, repeats=1)
        finally:
            ex.close()
        assert all(np.isfinite(s) and s > 0 for s in speeds)


class TestSharedPlanEndToEnd:
    """The same plan object configures the simulator AND the executors."""

    def test_simulated_run_uses_plan(self):
        A, b = _problem(n=120)
        c = cluster2(4)
        plan = cluster_placement(c, 4, strategy="calibrated", n=120)
        part = plan.partition().to_general()
        scheme = make_weighting("ownership", part)
        run = run_synchronous(
            A, b, part, scheme, get_solver("scipy"), c, placement=plan
        )
        assert run.converged
        recorded = dict(run.stats.placement)
        # Provenance names the actual hosts: by-name mapping for a plan
        # built from this very cluster.
        assert recorded.pop("hosts") == [w.name for w in plan.workers]
        assert recorded == plan.summary()

    def test_real_run_uses_same_plan(self):
        A, b = _problem(n=120)
        c = cluster2(4)
        plan = cluster_placement(c, 4, strategy="calibrated", n=120)
        part = plan.partition().to_general()
        scheme = make_weighting("ownership", part)
        ex = ThreadExecutor(max_workers=4)
        try:
            res = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"),
                executor=ex, placement=plan,
            )
        finally:
            ex.close()
        assert res.converged
        assert res.placement == plan.summary()

    @pytest.mark.parametrize("strategy", ["uniform", "proportional", "calibrated"])
    def test_solver_facade_strategies(self, strategy):
        from repro.core.solver import MultisplittingSolver

        A, b = _problem(n=150)
        with MultisplittingSolver(
            mode="synchronous", placement=strategy
        ) as solver:
            res = solver.solve(A, b, cluster=cluster3(5))
        assert res.converged
        assert res.placement is not None
        assert res.placement["strategy"] == strategy
        assert sum(res.placement["sizes"]) == 150

    def test_solver_facade_sequential_calibrated(self):
        from repro.core.solver import MultisplittingSolver

        A, b = _problem(n=150)
        with MultisplittingSolver(
            mode="sequential", processors=3, placement="calibrated",
            backend="threads",
        ) as solver:
            res = solver.solve(A, b)
        assert res.converged
        assert res.placement["strategy"] == "calibrated"

    def test_solver_facade_explicit_plan(self):
        from repro.core.solver import MultisplittingSolver

        A, b = _problem(n=150)
        plan = uniform_placement(150, 3)
        with MultisplittingSolver(mode="sequential", placement=plan) as solver:
            res = solver.solve(A, b)
        assert res.converged
        assert res.placement == plan.summary()
        bad = uniform_placement(100, 2)
        with MultisplittingSolver(mode="sequential", placement=bad) as solver:
            with pytest.raises(ValueError, match="unknowns"):
                solver.solve(A, b)

    def test_solver_rejects_unknown_strategy(self):
        from repro.core.solver import MultisplittingSolver

        with pytest.raises(ValueError, match="placement"):
            MultisplittingSolver(placement="fastest")

    def test_solver_rejects_partition_plus_placement(self):
        """Both an explicit partition and a placement claim the band
        layout; the conflict must be loud, not silently resolved."""
        from repro.core import uniform_bands
        from repro.core.solver import MultisplittingSolver

        A, b = _problem(n=150)
        part = uniform_bands(150, 3).to_general()
        with MultisplittingSolver(mode="sequential", placement="uniform") as solver:
            with pytest.raises(ValueError, match="band layout"):
                solver.solve(A, b, partition=part)

    def test_default_solve_unchanged_by_feature(self):
        """placement=None keeps the legacy layout bit-for-bit."""
        from repro.core.solver import MultisplittingSolver

        A, b = _problem(n=150)
        with MultisplittingSolver(mode="synchronous") as legacy:
            ref = legacy.solve(A, b, cluster=cluster2(4))
        with MultisplittingSolver(
            mode="synchronous", placement="proportional"
        ) as planned:
            res = planned.solve(A, b, cluster=cluster2(4))
        assert ref.placement is None and res.placement is not None
        assert ref.simulated_time == res.simulated_time
        np.testing.assert_array_equal(ref.x, res.x)


class TestCostModelHelpers:
    def test_iteration_cost_model_scales(self):
        cost = iteration_cost_model(5.0)
        assert cost(200) > cost(100) > 0.0
        batched = iteration_cost_model(5.0, k=4)
        assert batched(100) == pytest.approx(4 * cost(100))
        with pytest.raises(ValueError):
            iteration_cost_model(0.0)

    def test_cost_model_placement_validation(self):
        with pytest.raises(ValueError, match="workers"):
            cost_model_placement(100, [1.0, 1.0], workers=(WorkerSlot(name="x"),))


# ---------------------------------------------------------------------------
# hypothesis properties: invariants every plan must satisfy, however built
# ---------------------------------------------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

_SITES = ("siteA", "siteB", "siteC")


@st.composite
def _plans(draw):
    """Arbitrary valid plans from the public builders."""
    nworkers = draw(st.integers(1, 6))
    n = draw(st.integers(nworkers * 2, 400))
    speeds = [
        float(draw(st.floats(0.25, 8.0, allow_nan=False))) for _ in range(nworkers)
    ]
    groups = [draw(st.sampled_from(_SITES)) for _ in range(nworkers)]
    workers = tuple(
        WorkerSlot(name=f"w{i:02d}", speed=speeds[i], group=groups[i])
        for i in range(nworkers)
    )
    builder = draw(st.sampled_from(("uniform", "proportional", "cost_model")))
    if builder == "uniform":
        return uniform_placement(n, nworkers, workers=workers)
    if builder == "proportional":
        return proportional_placement(n, speeds, workers=workers)
    return cost_model_placement(n, speeds, workers=workers)


class TestPlacementProperties:
    """Satellite: plan invariants as hypothesis properties."""

    @settings(max_examples=60, deadline=None)
    @given(plan=_plans())
    def test_band_sizes_cover_n_exactly(self, plan):
        assert sum(plan.sizes) == plan.n
        assert all(s >= 1 for s in plan.sizes)
        part = plan.partition()
        assert part.n == plan.n
        assert [stop - start for start, stop in part.bounds] == list(plan.sizes)

    @settings(max_examples=60, deadline=None)
    @given(plan=_plans())
    def test_every_block_has_exactly_one_worker(self, plan):
        assert len(plan.assignment) == plan.nblocks
        for l in range(plan.nblocks):
            w = plan.assignment[l]
            assert 0 <= w < plan.nworkers
            assert plan.worker_of(l) is plan.workers[w]

    @settings(max_examples=60, deadline=None)
    @given(plan=_plans())
    def test_colocation_groups_partition_the_workers(self, plan):
        groups = plan.colocation_groups()
        seen: list[int] = []
        for members in groups.values():
            seen.extend(members)
        # Disjoint and complete: every worker in exactly one group.
        assert sorted(seen) == list(range(plan.nworkers))
        for name, members in groups.items():
            assert all(plan.workers[i].group == name for i in members)

    @settings(max_examples=40, deadline=None)
    @given(plan=_plans())
    def test_summary_round_trips_the_plan(self, plan):
        s = plan.summary()
        assert s["sizes"] == list(plan.sizes)
        assert s["assignment"] == list(plan.assignment)
        assert [w["name"] for w in s["workers"]] == [w.name for w in plan.workers]

    @settings(max_examples=30, deadline=None)
    @given(nprocs=st.integers(1, 10), n=st.integers(40, 400))
    def test_placement_for_round_trips_cluster_hosts(self, nprocs, n):
        """A plan built FROM a cluster maps every rank back onto the
        host its worker slot names -- the simulator charges the band
        exactly where the plan put it."""
        cluster = cluster3(10)
        plan = cluster_placement(cluster, nprocs, n=n, strategy="proportional")
        hosts = placement_for(cluster, plan.nblocks, plan=plan)
        assert len(hosts) == plan.nblocks
        for l, host in enumerate(hosts):
            assert host.name == plan.worker_of(l).name
            assert host.site == plan.worker_of(l).group
