"""Tests for the sparse Gilbert-Peierls LU kernel (repro.direct.sparse)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.direct import DenseLU, ScipySuperLU, SingularMatrixError, SparseLU
from repro.matrices import (
    advection_diffusion_2d,
    cage_like,
    diagonally_dominant,
    poisson_2d,
    random_sparse,
)


def check_solution(A, solver=None, seed=0, atol=1e-8):
    solver = solver or SparseLU()
    rng = np.random.default_rng(seed)
    b = rng.uniform(-1, 1, size=A.shape[0])
    x = solver.solve(A, b)
    assert np.max(np.abs(A @ x - b)) < atol * max(1.0, np.max(np.abs(b)))
    return x


class TestFactorSolve:
    def test_identity(self):
        A = sp.identity(6, format="csc")
        x = SparseLU().solve(A, np.arange(6.0))
        np.testing.assert_allclose(x, np.arange(6.0))

    def test_poisson2d_matches_dense(self):
        A = poisson_2d(6)
        b = np.arange(36.0)
        x_sparse = SparseLU().solve(A, b)
        x_dense = DenseLU().solve(A.toarray(), b)
        np.testing.assert_allclose(x_sparse, x_dense, atol=1e-8)

    def test_nonsymmetric_advection(self):
        check_solution(advection_diffusion_2d(7, peclet=1.5))

    def test_cage_analog(self):
        check_solution(cage_like(250, seed=3))

    def test_requires_pivoting(self):
        # zero leading diagonal forces a row exchange
        A = sp.csc_matrix(np.array([[0.0, 2.0, 1.0], [1.0, 0.0, 0.5], [3.0, 1.0, 0.0]]))
        x = SparseLU(ordering="natural").solve(A, np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(A @ x, [1.0, 2.0, 3.0], atol=1e-10)

    def test_pa_pc_equals_lu(self):
        A = random_sparse(30, density=0.1, seed=7)
        f = SparseLU().factor(A)
        lhs = A.toarray()[np.ix_(f.col_perm[f.row_perm.astype(int)], f.col_perm)]
        L = (f.L + sp.identity(30)).toarray()
        np.testing.assert_allclose(L @ f.U.toarray(), lhs, atol=1e-9)

    def test_singular_raises(self):
        A = sp.csc_matrix(np.array([[1.0, 2.0], [2.0, 4.0]]))
        with pytest.raises(SingularMatrixError):
            SparseLU().factor(A)

    def test_structurally_singular_raises(self):
        A = sp.csc_matrix(np.array([[1.0, 0.0], [2.0, 0.0]]))
        with pytest.raises(SingularMatrixError):
            SparseLU().factor(A)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SparseLU().factor(sp.csc_matrix((0, 0)))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            SparseLU().factor(sp.csc_matrix((2, 3)))

    def test_rhs_shape_check(self):
        f = SparseLU().factor(poisson_2d(3))
        with pytest.raises(ValueError):
            f.solve(np.ones(10))


class TestOrderingsAndOptions:
    @pytest.mark.parametrize("ordering", ["natural", "rcm", "mindeg"])
    def test_all_orderings_correct(self, ordering):
        A = poisson_2d(5)
        check_solution(A, SparseLU(ordering=ordering))

    def test_rcm_reduces_fill_vs_natural_on_arrow(self):
        # Arrow matrix pointing the wrong way: natural ordering fills fully.
        n = 40
        A = sp.lil_matrix((n, n))
        A[0, :] = 1.0
        A[:, 0] = 1.0
        A.setdiag(n * 1.0)
        A = A.tocsc()
        fill_nat = SparseLU(ordering="natural").factor(A).stats.nnz_factors
        fill_rcm = SparseLU(ordering="rcm").factor(A).stats.nnz_factors
        assert fill_rcm < fill_nat

    def test_threshold_pivoting_keeps_diagonal(self):
        A = diagonally_dominant(40, seed=9)
        f = SparseLU(diag_preference=0.1).factor(A)
        # with dominance, relaxed pivoting should keep the natural rows:
        np.testing.assert_array_equal(np.sort(f.row_perm), np.arange(40))
        b = np.ones(40)
        x = f.solve(b)
        assert np.max(np.abs(A @ x - b)) < 1e-9

    def test_bad_options_rejected(self):
        with pytest.raises(ValueError):
            SparseLU(diag_preference=2.0)
        with pytest.raises(ValueError):
            SparseLU(pivot_tol=-0.1)
        with pytest.raises(KeyError):
            SparseLU(ordering="amd").factor(poisson_2d(3))


class TestStatsAndCrossValidation:
    def test_stats_fill_ratio_at_least_one_for_dominant(self):
        A = diagonally_dominant(60, seed=1)
        stats = SparseLU().factor(A).stats
        assert stats.fill_ratio >= 1.0
        assert stats.factor_flops > 0
        assert stats.memory_bytes > 0

    def test_matches_scipy_superlu(self):
        A = cage_like(150, seed=5)
        b = np.linspace(-1, 1, 150)
        x_ours = SparseLU().solve(A, b)
        x_scipy = ScipySuperLU().solve(A, b)
        np.testing.assert_allclose(x_ours, x_scipy, atol=1e-8)

    def test_sparse_beats_dense_memory_on_poisson(self):
        A = poisson_2d(12)
        mem_sparse = SparseLU().factor(A).stats.memory_bytes
        mem_dense = DenseLU().factor(A.toarray()).stats.memory_bytes
        assert mem_sparse < mem_dense

    @settings(max_examples=15, deadline=None)
    @given(st.integers(5, 60), st.integers(0, 500))
    def test_property_residual(self, n, seed):
        A = random_sparse(n, density=0.2, seed=seed)
        check_solution(A, seed=seed)


class TestScipyBackend:
    def test_scipy_solver_registry(self):
        from repro.direct import get_solver

        s = get_solver("scipy", permc_spec="NATURAL")
        assert isinstance(s, ScipySuperLU)

    def test_scipy_stats_populated(self):
        A = poisson_2d(8)
        stats = ScipySuperLU().factor(A).stats
        assert stats.n == 64
        assert stats.nnz_factors > A.nnz
        assert stats.factor_flops > 0

    def test_scipy_singular(self):
        A = sp.csc_matrix(np.array([[1.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(SingularMatrixError):
            ScipySuperLU().factor(A)

    def test_scipy_rhs_shape(self):
        f = ScipySuperLU().factor(poisson_2d(3))
        with pytest.raises(ValueError):
            f.solve(np.ones(2))
