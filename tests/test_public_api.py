"""Public-API consistency checks.

Guards the documented surface: ``__all__`` entries must resolve, the
lazy top-level facade must work, and the registries must stay aligned
with the documentation.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.direct",
    "repro.distbaseline",
    "repro.detection",
    "repro.experiments",
    "repro.grid",
    "repro.linalg",
    "repro.matrices",
    "repro.runtime",
    "repro.schedule",
    "repro.serve",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_entries_resolve(name):
    mod = importlib.import_module(name)
    assert hasattr(mod, "__all__"), f"{name} lacks __all__"
    for entry in mod.__all__:
        assert getattr(mod, entry, None) is not None or entry in dir(mod), (
            f"{name}.__all__ lists unresolvable {entry!r}"
        )


@pytest.mark.parametrize("name", PACKAGES)
def test_all_sorted_and_unique(name):
    mod = importlib.import_module(name)
    entries = list(mod.__all__)
    assert len(entries) == len(set(entries)), f"{name}.__all__ has duplicates"


def test_top_level_lazy_facade():
    import repro

    assert repro.MultisplittingSolver is not None
    assert repro.SolveResult is not None
    assert repro.__version__ == "1.0.0"
    with pytest.raises(AttributeError):
        repro.NoSuchThing


def test_direct_registry_matches_docs():
    from repro.direct import available_solvers

    assert set(available_solvers()) == {"dense", "banded", "sparse", "scipy"}


def test_workload_registry_matches_paper():
    from repro.matrices import WORKLOADS

    paper_names = {w.paper_name for w in WORKLOADS.values()}
    assert paper_names == {
        "cage10.rua",
        "cage11.rua",
        "cage12.rua",
        "generated 500000",
        "generated 100000",
    }


def test_experiment_registry_covers_evaluation():
    from repro.experiments import EXPERIMENTS

    assert set(EXPERIMENTS) == {"table1", "table2", "table3", "table4", "figure3"}


def test_every_public_callable_has_docstring():
    """Deliverable (e): doc comments on every public item."""
    missing = []
    for name in PACKAGES:
        mod = importlib.import_module(name)
        for entry in mod.__all__:
            obj = getattr(mod, entry, None)
            if callable(obj) and not isinstance(obj, (int, float, str, dict, list)):
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{name}.{entry}")
    assert not missing, f"public items without docstrings: {missing}"


def test_solver_classes_document_parameters():
    from repro.core import MultisplittingSolver
    from repro.direct import SparseLU

    assert "overlap" in MultisplittingSolver.__doc__
    assert "ordering" in SparseLU.__doc__
