"""Tests for the banded LU kernel (repro.direct.banded)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.direct import BandedLU, DenseLU, SingularMatrixError, to_band_storage
from repro.matrices import banded_random, poisson_1d, tridiagonal


class TestBandStorage:
    def test_pack_tridiagonal(self):
        A = tridiagonal(4, lower=-2.0, diag=5.0, upper=-1.0)
        ab = to_band_storage(A, 1, 1)
        np.testing.assert_allclose(ab[1], [5.0, 5.0, 5.0, 5.0])  # diagonal
        np.testing.assert_allclose(ab[0][1:], [-1.0, -1.0, -1.0])  # upper
        np.testing.assert_allclose(ab[2][:-1], [-2.0, -2.0, -2.0])  # lower

    def test_entries_outside_band_dropped(self):
        A = sp.csr_matrix(np.array([[2.0, 0.0, 7.0], [0.0, 2.0, 0.0], [0.0, 0.0, 2.0]]))
        ab = to_band_storage(A, 0, 1)
        assert ab.shape == (2, 3)
        assert 7.0 not in ab


class TestFactorSolve:
    def test_matches_dense_on_poisson(self):
        A = poisson_1d(40)
        b = np.sin(np.arange(40.0))
        x_band = BandedLU().solve(A, b)
        x_dense = DenseLU().solve(A.toarray(), b)
        np.testing.assert_allclose(x_band, x_dense, atol=1e-9)

    def test_matches_dense_on_asymmetric_band(self):
        A = banded_random(35, lower_bw=3, upper_bw=2, seed=1)
        b = np.ones(35)
        np.testing.assert_allclose(
            BandedLU().solve(A, b), DenseLU().solve(A.toarray(), b), atol=1e-8
        )

    def test_diagonal_matrix(self):
        A = sp.diags([2.0, 4.0, 8.0]).tocsr()
        x = BandedLU().solve(A, np.array([2.0, 4.0, 8.0]))
        np.testing.assert_allclose(x, np.ones(3))

    def test_zero_pivot_raises(self):
        A = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(SingularMatrixError):
            BandedLU().factor(A)

    def test_zero_matrix_raises(self):
        with pytest.raises(SingularMatrixError):
            BandedLU().factor(sp.csr_matrix((3, 3)))

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError):
            BandedLU().factor(sp.csr_matrix((0, 0)))

    def test_rhs_shape_check(self):
        f = BandedLU().factor(poisson_1d(5))
        with pytest.raises(ValueError):
            f.solve(np.ones(6))

    def test_stats_reflect_band(self):
        A = banded_random(50, lower_bw=2, upper_bw=3, seed=2)
        stats = BandedLU().factor(A).stats
        assert stats.n == 50
        assert stats.nnz_factors == (2 + 3 + 1) * 50
        assert stats.memory_bytes == 8 * (2 + 3 + 1) * 50
        assert stats.factor_flops > 0

    def test_bandwidths_property(self):
        f = BandedLU().factor(banded_random(20, lower_bw=2, upper_bw=1, seed=3))
        assert f.bandwidths == (2, 1)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(3, 40), st.integers(0, 4), st.integers(0, 4), st.integers(0, 99))
    def test_property_matches_dense(self, n, kl, ku, seed):
        A = banded_random(n, lower_bw=kl, upper_bw=ku, dominance=2.0, seed=seed)
        b = np.random.default_rng(seed).random(n)
        np.testing.assert_allclose(
            BandedLU().solve(A, b), DenseLU().solve(A.toarray(), b), atol=1e-7
        )
