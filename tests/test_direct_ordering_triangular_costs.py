"""Tests for orderings, triangular solves and cost models."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.direct import (
    BYTES_PER_NNZ,
    SingularMatrixError,
    backward_substitution,
    banded_factor_cost,
    compute_ordering,
    dense_factor_cost,
    forward_substitution,
    minimum_degree_ordering,
    rcm_ordering,
    sparse_factor_cost,
    sparse_lower_solve,
    sparse_upper_solve,
    triangular_solve_flops,
)
from repro.linalg import lower_bandwidth, upper_bandwidth
from repro.matrices import poisson_1d, poisson_2d, random_sparse


class TestOrderings:
    def test_natural_is_identity(self):
        A = poisson_2d(4)
        np.testing.assert_array_equal(compute_ordering(A, "natural"), np.arange(16))

    def test_rcm_is_permutation(self):
        perm = rcm_ordering(poisson_2d(5))
        assert sorted(perm.tolist()) == list(range(25))

    def test_mindeg_is_permutation(self):
        perm = minimum_degree_ordering(poisson_2d(5))
        assert sorted(perm.tolist()) == list(range(25))

    def test_rcm_reduces_bandwidth(self):
        # A 'bad' ordering of a path graph: even nodes then odd nodes.
        n = 30
        path = poisson_1d(n)
        shuffle = np.concatenate([np.arange(0, n, 2), np.arange(1, n, 2)])
        A = path[shuffle][:, shuffle].tocsr()
        perm = rcm_ordering(A)
        B = A[perm][:, perm]
        assert max(lower_bandwidth(B), upper_bandwidth(B)) <= 2

    def test_rcm_handles_disconnected_components(self):
        A = sp.block_diag([poisson_1d(4), poisson_1d(3)]).tocsr()
        perm = rcm_ordering(A)
        assert sorted(perm.tolist()) == list(range(7))

    def test_unknown_ordering_raises(self):
        with pytest.raises(KeyError):
            compute_ordering(poisson_1d(3), "colamd")

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 30), st.integers(0, 100))
    def test_property_orderings_are_permutations(self, n, seed):
        A = random_sparse(n, density=0.2, seed=seed)
        for name in ("rcm", "mindeg"):
            perm = compute_ordering(A, name)
            assert sorted(perm.tolist()) == list(range(n))


class TestDenseTriangular:
    def test_forward_unit(self):
        L = np.array([[1.0, 0.0], [0.5, 1.0]])
        x = forward_substitution(L, np.array([2.0, 2.0]), unit_diagonal=True)
        np.testing.assert_allclose(x, [2.0, 1.0])

    def test_forward_non_unit(self):
        L = np.array([[2.0, 0.0], [1.0, 4.0]])
        x = forward_substitution(L, np.array([2.0, 9.0]))
        np.testing.assert_allclose(x, [1.0, 2.0])

    def test_backward(self):
        U = np.array([[2.0, 1.0], [0.0, 4.0]])
        x = backward_substitution(U, np.array([4.0, 8.0]))
        np.testing.assert_allclose(x, [1.0, 2.0])

    def test_zero_diagonal_raises(self):
        with pytest.raises(SingularMatrixError):
            forward_substitution(np.zeros((2, 2)), np.ones(2))
        with pytest.raises(SingularMatrixError):
            backward_substitution(np.zeros((2, 2)), np.ones(2))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 20), st.integers(0, 100))
    def test_property_roundtrip(self, n, seed):
        rng = np.random.default_rng(seed)
        L = np.tril(rng.uniform(0.1, 1.0, (n, n))) + n * np.eye(n)
        x_true = rng.uniform(-1, 1, n)
        x = forward_substitution(L, L @ x_true)
        np.testing.assert_allclose(x, x_true, atol=1e-9)
        U = L.T
        x = backward_substitution(U, U @ x_true)
        np.testing.assert_allclose(x, x_true, atol=1e-9)


class TestSparseTriangular:
    def test_lower_unit(self):
        L = sp.csc_matrix(np.array([[1.0, 0.0], [0.5, 1.0]]))
        x = sparse_lower_solve(L, np.array([2.0, 2.0]), unit_diagonal=True)
        np.testing.assert_allclose(x, [2.0, 1.0])

    def test_lower_non_unit(self):
        L = sp.csc_matrix(np.array([[2.0, 0.0], [1.0, 4.0]]))
        x = sparse_lower_solve(L, np.array([2.0, 9.0]), unit_diagonal=False)
        np.testing.assert_allclose(x, [1.0, 2.0])

    def test_upper(self):
        U = sp.csc_matrix(np.array([[2.0, 1.0], [0.0, 4.0]]))
        x = sparse_upper_solve(U, np.array([4.0, 8.0]))
        np.testing.assert_allclose(x, [1.0, 2.0])

    def test_upper_zero_diag_raises(self):
        U = sp.csc_matrix(np.array([[2.0, 1.0], [0.0, 0.0]]))
        with pytest.raises(SingularMatrixError):
            sparse_upper_solve(U, np.ones(2))

    def test_lower_missing_diag_raises(self):
        L = sp.csc_matrix(np.array([[0.0, 0.0], [1.0, 1.0]]))
        with pytest.raises(SingularMatrixError):
            sparse_lower_solve(L, np.ones(2), unit_diagonal=False)


class TestCosts:
    def test_dense_cubic(self):
        assert dense_factor_cost(30).factor_flops == pytest.approx((2 / 3) * 30**3)
        assert dense_factor_cost(30).solve_flops == 2 * 900

    def test_banded_linear_in_n(self):
        c1 = banded_factor_cost(100, 2, 2)
        c2 = banded_factor_cost(200, 2, 2)
        assert c2.factor_flops == pytest.approx(2 * c1.factor_flops)

    def test_sparse_cost_scales_with_fill(self):
        lo = sparse_factor_cost(1000, 5000, fill_ratio=2.0)
        hi = sparse_factor_cost(1000, 5000, fill_ratio=8.0)
        assert hi.factor_flops > lo.factor_flops
        assert hi.memory_bytes == int(BYTES_PER_NNZ * 8.0 * 5000)

    def test_triangular_flops(self):
        assert triangular_solve_flops(100) == 200.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            dense_factor_cost(-1)
        with pytest.raises(ValueError):
            banded_factor_cost(-1, 0, 0)
        with pytest.raises(ValueError):
            sparse_factor_cost(0, 10)
        with pytest.raises(ValueError):
            sparse_factor_cost(10, 10, fill_ratio=0.5)
        with pytest.raises(ValueError):
            triangular_solve_flops(-5)
