"""Unit tests of the interleaving explorer's engine (repro.check.engine).

Tiny purpose-built models pin down the scheduler contract: exhaustive
enumeration visits every schedule exactly once, deadlock/invariant/
bound/error verdicts each fire on the execution that earns them, blocked
threads really wait for their predicates, and a violation's trace
replays to the same verdict with no exploration.
"""

from __future__ import annotations

import pytest

from repro.check import (
    Model,
    Violation,
    cond_schedule,
    explore,
    explore_exhaustive,
    explore_random,
    format_violation,
    replay,
    run_schedule,
    schedule,
)


class _TwoSteppers(Model):
    """Two independent threads, two traps each: 4!/(2!2!) = 6 schedules."""

    name = "toy.steppers"

    def __init__(self):
        self.log = []

    def _t(self, label):
        for i in range(2):
            yield from schedule()
            self.log.append((label, i))

    def threads(self):
        return [("a", lambda: self._t("a")), ("b", lambda: self._t("b"))]


class _Handoff(Model):
    """Producer fills a queue the consumer blocks on."""

    name = "toy.handoff"

    def __init__(self):
        self.queue = []
        self.got = []

    def _producer(self):
        for v in range(2):
            yield from schedule()
            self.queue.append(v)

    def _consumer(self):
        for _ in range(2):
            yield from cond_schedule(lambda: bool(self.queue))
            self.got.append(self.queue.pop(0))

    def threads(self):
        return [("prod", self._producer), ("cons", self._consumer)]

    def invariants(self):
        # The consumer can never overtake the producer.
        return [("fifo", lambda: self.got == sorted(self.got))]


class _AbbaDeadlock(Model):
    """The classic lock-order inversion: reachable deadlock."""

    name = "toy.abba"

    def __init__(self):
        self.locks = {"a": None, "b": None}

    def _t(self, me, first, second):
        yield from cond_schedule(lambda: self.locks[first] is None)
        self.locks[first] = me
        yield from schedule()
        yield from cond_schedule(lambda: self.locks[second] is None)
        self.locks[second] = me
        yield from schedule()
        self.locks[second] = None
        self.locks[first] = None

    def threads(self):
        return [
            ("t0", lambda: self._t(0, "a", "b")),
            ("t1", lambda: self._t(1, "b", "a")),
        ]


class _TransientBad(Model):
    """A thread that breaks the invariant and repairs it one step later.

    Catches engines that only check invariants at quiescence: the bad
    state exists for exactly one scheduling step.
    """

    name = "toy.transient"

    def __init__(self):
        self.x = 0

    def _t(self):
        yield from schedule()
        self.x = 1  # torn state...
        yield from schedule()
        self.x = 0  # ...repaired

    def threads(self):
        return [("w", self._t)]

    def invariants(self):
        return [("x-is-zero", lambda: self.x == 0)]


class TestRunSchedule:
    def test_zero_choice_schedule_runs_to_completion(self):
        m = _TwoSteppers()
        res = run_schedule(m, lambda n: 0)
        assert res.ok and res.steps == 4
        assert m.log == [("a", 0), ("a", 1), ("b", 0), ("b", 1)]
        # fanouts record how many threads were ready at each step.
        assert res.fanouts == (2, 2, 1, 1)
        assert res.schedule_names == ("a", "a", "b", "b")

    def test_deadlock_detected_with_trace(self):
        # Alternate strictly: t0 takes a, t1 takes b, both wait forever.
        res = replay(_AbbaDeadlock, [0, 1])
        assert res.violation is not None
        assert res.violation.kind == "deadlock"
        assert "t0" in res.violation.detail and "t1" in res.violation.detail

    def test_deadlock_ok_hook_accepts_terminal_blocking(self):
        class Accepting(_AbbaDeadlock):
            def deadlock_ok(self, blocked):
                return set(blocked) == {"t0", "t1"}

        res = replay(Accepting, [0, 1])
        assert res.ok

    def test_transient_invariant_break_is_caught(self):
        res = run_schedule(_TransientBad(), lambda n: 0)
        assert res.violation is not None
        assert res.violation.kind == "invariant"
        assert res.violation.detail == "x-is-zero"

    def test_bound_verdict_on_livelock(self):
        class Spinner(Model):
            def threads(self):
                def t():
                    while True:
                        yield from schedule()

                return [("spin", t)]

        res = run_schedule(Spinner(), lambda n: 0, max_steps=25)
        assert res.violation is not None and res.violation.kind == "bound"
        assert res.steps == 25

    def test_error_verdict_captures_exception(self):
        class Raiser(Model):
            def threads(self):
                def t():
                    yield from schedule()
                    raise ValueError("boom")

                return [("bad", t)]

        res = run_schedule(Raiser(), lambda n: 0)
        assert res.violation is not None and res.violation.kind == "error"
        assert "boom" in res.violation.detail


class TestExploreExhaustive:
    def test_visits_every_schedule_exactly_once(self):
        res = explore_exhaustive(_TwoSteppers)
        assert res.ok and res.exhausted
        assert res.runs == 6  # 4!/(2!2!) interleavings of aabb

    def test_three_singletons_give_factorial_runs(self):
        class Three(Model):
            def threads(self):
                def t():
                    yield from schedule()

                return [(f"t{i}", t) for i in range(3)]

        res = explore_exhaustive(Three)
        assert res.exhausted and res.runs == 6  # 3!

    def test_finds_the_abba_deadlock(self):
        res = explore_exhaustive(_AbbaDeadlock)
        assert res.violation is not None
        assert res.violation.kind == "deadlock"

    def test_budget_exhaustion_reported_not_hidden(self):
        res = explore_exhaustive(_TwoSteppers, max_runs=3)
        assert res.ok and not res.exhausted and res.runs == 3

    def test_consumer_waits_for_producer(self):
        res = explore_exhaustive(_Handoff)
        assert res.ok and res.exhausted


class TestReplayAndRandom:
    def test_violation_trace_replays_to_same_verdict(self):
        found = explore_exhaustive(_AbbaDeadlock)
        again = replay(_AbbaDeadlock, found.violation.trace)
        assert again.violation is not None
        assert again.violation.kind == found.violation.kind
        assert again.violation.trace == found.violation.trace

    def test_replay_pads_and_clamps(self):
        # Short trace: tail falls back to choice 0 and still finishes.
        assert replay(_TwoSteppers, [1]).ok
        # Oversized choices clamp to the last ready thread.
        assert replay(_TwoSteppers, [99, 99, 99, 99]).ok

    def test_random_walks_are_seed_deterministic(self):
        a = explore_random(_AbbaDeadlock, seed=3, walks=200)
        b = explore_random(_AbbaDeadlock, seed=3, walks=200)
        assert a.violation is not None and b.violation is not None
        assert a.violation.trace == b.violation.trace
        assert a.walks == b.walks

    def test_explore_skips_walks_when_exhausted(self):
        res = explore(_TwoSteppers)
        assert res.exhausted and res.walks == 0

    def test_explore_falls_back_to_walks(self):
        res = explore(_TwoSteppers, max_runs=2, walks=7)
        assert res.ok and not res.exhausted
        assert res.runs == 2 and res.walks == 7


class TestFormatting:
    def test_counterexample_carries_replay_line(self):
        v = Violation("deadlock", "stuck", (0, 1, 0), 3, ("a", "b", "a"))
        text = format_violation(v)
        assert "deadlock at step 3" in text
        assert "a -> b -> a" in text
        assert "replayable trace: [0, 1, 0]" in text
        assert str(v) == text

    def test_nondeterministic_replay_is_an_error(self):
        class Shrinking(Model):
            """Fanout 2 on the first run, 1 under any nonzero prefix."""

            def __init__(self):
                self.n = 2

            def threads(self):
                def t():
                    yield from schedule()

                return [(f"t{i}", t) for i in range(2)]

        # A prefix choice >= the ready count must raise, not wedge.
        def chooser(n):
            return 5

        with pytest.raises(RuntimeError, match="chooser picked"):
            run_schedule(_TwoSteppers(), chooser)
