"""One contract, four backends: the Executor conformance suite.

Every execution backend -- inline, threads, processes, and the TCP
``sockets`` backend -- must honour the same observable contract:

* ``attach`` / ``solve_blocks`` / ``detach`` / ``close`` lifecycle,
  with idempotent ``detach``/``close`` and a reusable executor after
  ``close``;
* **bit-identical** synchronous iterates vs :class:`InlineExecutor`
  (a block solve is a pure function of ``(block, z)``, results in
  request order);
* factor-once cache accounting wherever the counters physically live
  (the caller's cache for in-process backends, per-worker caches
  aggregated by ``run_cache_stats`` for process/socket backends);
* sticky placement affinity (a :class:`repro.schedule.Placement` pins
  block ``l`` to worker ``assignment[l]``) without changing iterates;
* crash-safe teardown: ``close`` completes, never raises, and stays
  idempotent even after a worker process died mid-binding.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import (
    chaotic_iterate,
    make_weighting,
    multisplitting_iterate,
    uniform_bands,
)
from repro.core.partition import interleaved_partition, permuted_bands
from repro.core.stopping import StoppingCriterion
from repro.direct import get_solver
from repro.direct.cache import FactorizationCache
from repro.matrices import diagonally_dominant, rhs_for_solution
from repro.runtime import (
    ChaosExecutor,
    FaultInjector,
    FaultPolicy,
    ProcessExecutor,
    SocketExecutor,
    get_executor,
)
from repro.schedule import Placement, WorkerSlot

BACKENDS = ("inline", "threads", "processes", "sockets")

#: Constructor kwargs keeping worker pools small and spawns cheap.
_KWARGS = {
    "inline": {},
    "threads": {"max_workers": 2},
    "processes": {"max_workers": 2},
    "sockets": {"workers": 2},
}


def _make_executor(name):
    return get_executor(name, **_KWARGS[name])


def _problem(n=96, L=4, seed=5):
    A = diagonally_dominant(n, dominance=1.5, bandwidth=4, seed=seed)
    b, _ = rhs_for_solution(A, seed=seed + 1)
    part = uniform_bands(n, L).to_general()
    scheme = make_weighting("ownership", part)
    return A, b, part, scheme


#: The partition-generality axis: every decomposition shape of the
#: paper's Remarks 2-3, including the overlapping Schwarz regime.
PARTITION_KINDS = ("band", "schwarz", "interleaved", "permuted")


def _general_problem(kind, n=96, L=4, seed=5):
    """A problem over one of the general decomposition shapes."""
    A = diagonally_dominant(n, dominance=1.5, bandwidth=4, seed=seed)
    b, _ = rhs_for_solution(A, seed=seed + 1)
    if kind == "band":
        part = uniform_bands(n, L).to_general()
        scheme = make_weighting("ownership", part)
    elif kind == "schwarz":
        # Overlapping bands combined by the Section-4.3 Schwarz family.
        part = uniform_bands(n, L, overlap=6).to_general()
        scheme = make_weighting("schwarz", part)
    elif kind == "interleaved":
        # Remark 2: several non-adjacent bands per processor.
        part = interleaved_partition(n, L, chunk=4)
        scheme = make_weighting("ownership", part)
    else:  # permuted
        # Remark 2's permutation layout, with overlap so components have
        # several owners -- exercised through O'Leary-White averaging.
        perm = np.random.default_rng(seed).permutation(n)
        part = permuted_bands(perm, L, overlap=4)
        scheme = make_weighting("averaging", part)
    return A, b, part, scheme


def _identity_plan(n, L, sizes=None):
    return Placement(
        strategy="test",
        n=n,
        workers=tuple(WorkerSlot(name=f"w{i}") for i in range(L)),
        sizes=tuple(sizes) if sizes is not None else (n // L,) * L,
        assignment=tuple(range(L)),
    )


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


@pytest.fixture()
def executor(backend):
    ex = _make_executor(backend)
    yield ex
    ex.close()


class TestLifecycleConformance:
    def test_attach_solve_detach(self, executor):
        A, b, part, _ = _problem()
        executor.attach(A, b, part.sets, get_solver("scipy"))
        assert executor.nblocks == part.nprocs
        z = np.ones(b.shape)
        full = executor.solve_round([z] * part.nprocs)
        assert len(full) == part.nprocs
        some = executor.solve_blocks([(3, z), (1, z)])
        np.testing.assert_array_equal(some[0], full[3])
        np.testing.assert_array_equal(some[1], full[1])
        executor.detach()
        assert executor.nblocks == 0

    def test_detach_idempotent(self, executor):
        A, b, part, _ = _problem()
        executor.attach(A, b, part.sets, get_solver("scipy"))
        executor.detach()
        executor.detach()
        assert executor.nblocks == 0

    def test_solve_after_detach_raises(self, executor):
        A, b, part, _ = _problem()
        executor.attach(A, b, part.sets, get_solver("scipy"))
        executor.detach()
        with pytest.raises(RuntimeError):
            executor.solve_blocks([(0, np.zeros(b.shape))])

    def test_close_idempotent_and_reusable(self, backend):
        """close() twice is a no-op; attach after close rebuilds workers."""
        A, b, part, scheme = _problem()
        ex = _make_executor(backend)
        try:
            r1 = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"), executor=ex
            )
            ex.close()
            ex.close()
            r2 = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"), executor=ex
            )
            assert r1.converged and r2.converged
            np.testing.assert_array_equal(r1.x, r2.x)
        finally:
            ex.close()

    def test_placement_length_mismatch_rejected(self, executor):
        A, b, part, _ = _problem()
        bad = _identity_plan(96, 2, sizes=(48, 48))
        with pytest.raises(ValueError, match="placement"):
            executor.attach(A, b, part.sets, get_solver("scipy"), placement=bad)


class TestDeterminismConformance:
    def test_bit_identical_vs_inline(self, backend):
        A, b, part, scheme = _problem()
        stopping = StoppingCriterion(tolerance=1e-300, max_iterations=8)
        with _make_executor("inline") as ref_ex, _make_executor(backend) as ex:
            ref = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"),
                stopping=stopping, executor=ref_ex,
            )
            res = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"),
                stopping=stopping, executor=ex,
            )
        assert res.backend == backend
        assert res.history == ref.history
        np.testing.assert_array_equal(res.x, ref.x)

    def test_placement_does_not_change_iterates(self, executor, backend):
        """Pinning blocks to workers moves solves, never values."""
        A, b, part, scheme = _problem()
        # Two worker slots, four blocks: (0, 1, 0, 1) round-robin pinning
        # matches every backend's two-worker pool from _KWARGS.
        plan = Placement(
            strategy="test",
            n=96,
            workers=(WorkerSlot(name="w0"), WorkerSlot(name="w1")),
            sizes=(24, 24, 24, 24),
            assignment=(0, 1, 0, 1),
        )
        stopping = StoppingCriterion(tolerance=1e-300, max_iterations=6)
        ref = multisplitting_iterate(
            A, b, part, scheme, get_solver("scipy"), stopping=stopping
        )
        res = multisplitting_iterate(
            A, b, part, scheme, get_solver("scipy"),
            stopping=stopping, executor=executor, placement=plan,
        )
        assert res.placement == plan.summary()
        np.testing.assert_array_equal(res.x, ref.x)
        assert set(res.block_seconds) == set(range(4))


class TestCacheConformance:
    def test_factor_once_accounting(self, backend):
        """Fresh workers + fresh cache: misses == blocks, one hit per
        block per iteration -- wherever the counters physically live."""
        A, b, part, scheme = _problem()
        cache = FactorizationCache()
        with _make_executor(backend) as ex:
            res = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"), cache=cache, executor=ex
            )
        stats = res.cache_stats
        assert stats is not None
        assert stats.misses == part.nprocs
        assert stats.hits == res.iterations * part.nprocs

    def test_reattach_hits_worker_caches(self, backend):
        """Re-attaching the same matrix skips every factorization."""
        A, b, part, scheme = _problem()
        cache = FactorizationCache()
        with _make_executor(backend) as ex:
            first = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"), cache=cache, executor=ex
            )
            second = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"), cache=cache, executor=ex
            )
        assert first.cache_stats.misses == part.nprocs
        assert second.cache_stats.misses == 0


class TestPartitionGeneralityConformance:
    """Satellite: the partition-generality × backend conformance matrix.

    {band, band+overlap/Schwarz, interleaved, permuted} × all four
    executors: every decomposition shape must produce **bit-identical**
    iterates on every backend (the general owned-rows attach ships
    arbitrary ``A[J_l, :]`` slices to process/socket workers, and a
    block solve stays a pure function of ``(block, z)``), and the
    factor-cache accounting must stay coherent wherever the counters
    physically live.
    """

    @pytest.mark.parametrize("kind", PARTITION_KINDS)
    def test_bit_identical_vs_inline(self, backend, kind):
        A, b, part, scheme = _general_problem(kind)
        stopping = StoppingCriterion(tolerance=1e-300, max_iterations=6)
        with _make_executor("inline") as ref_ex, _make_executor(backend) as ex:
            ref = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"),
                stopping=stopping, executor=ref_ex,
            )
            res = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"),
                stopping=stopping, executor=ex,
            )
        assert res.backend == backend
        assert res.history == ref.history
        np.testing.assert_array_equal(res.x, ref.x)

    @pytest.mark.parametrize("kind", PARTITION_KINDS)
    def test_cache_stats_coherent(self, backend, kind):
        """Factor-once accounting holds on every decomposition shape:
        misses == blocks, one hit per block per iteration."""
        A, b, part, scheme = _general_problem(kind)
        cache = FactorizationCache()
        with _make_executor(backend) as ex:
            res = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"), cache=cache, executor=ex
            )
        assert res.converged
        stats = res.cache_stats
        assert stats is not None
        assert stats.misses == part.nprocs
        assert stats.hits == res.iterations * part.nprocs

    @pytest.mark.parametrize("kind", ("interleaved", "permuted"))
    def test_chaotic_keeps_schedule_on_general_partitions(self, backend, kind):
        """The seeded chaotic driver replays identically on every backend
        for general decompositions too (the schedule lives driver-side)."""
        A, b, part, scheme = _general_problem(kind)
        kwargs = dict(
            stopping=StoppingCriterion(tolerance=1e-8, consecutive=3),
            seed=2,
        )
        ref = chaotic_iterate(A, b, part, scheme, get_solver("scipy"), **kwargs)
        with _make_executor(backend) as ex:
            res = chaotic_iterate(
                A, b, part, scheme, get_solver("scipy"), executor=ex, **kwargs
            )
        assert res.converged == ref.converged
        assert res.iterations == ref.iterations
        np.testing.assert_array_equal(res.x, ref.x)


class TestPipelinedDispatchConformance:
    """Satellite: dependency-gated dispatch × partitions × backends.

    ``dispatch="pipelined"`` submits block ``l``'s next solve as soon
    as the round pieces it actually reads (per
    :func:`repro.schedule.pattern.dependency_gates`) have landed,
    instead of waiting for the global round barrier.  Because a
    non-gated block's piece is multiplied by a zero weight at every
    column the solve reads, the iterates must stay **bit-identical** to
    the barrier driver -- on every decomposition shape, on every
    backend.
    """

    @pytest.mark.parametrize("kind", PARTITION_KINDS)
    def test_bit_identical_vs_barrier(self, backend, kind):
        A, b, part, scheme = _general_problem(kind)
        stopping = StoppingCriterion(tolerance=1e-300, max_iterations=6)
        ref = multisplitting_iterate(
            A, b, part, scheme, get_solver("scipy"), stopping=stopping
        )
        with _make_executor(backend) as ex:
            res = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"),
                stopping=stopping, executor=ex, dispatch="pipelined",
            )
        assert res.dispatch == "pipelined"
        assert res.gate_wait_seconds >= 0.0
        assert res.history == ref.history
        np.testing.assert_array_equal(res.x, ref.x)

    def test_gates_cover_dependencies(self):
        """Every gate set contains the block itself and its pattern deps."""
        from repro.core.distributed import communication_pattern
        from repro.schedule.pattern import dependency_gates

        A, b, part, scheme = _problem()
        gates = dependency_gates(A, part, scheme)
        pattern = communication_pattern(part, scheme, A=A)
        assert len(gates) == part.nprocs
        for l, gate in enumerate(gates):
            assert l in gate
            assert set(pattern.deps[l]) <= set(gate)

    def test_solver_mode_pipelined(self, backend):
        """The solver facade exposes dispatch as ``mode="pipelined"``."""
        from repro.core.solver import MultisplittingSolver
        from repro.matrices import diagonally_dominant, rhs_for_solution

        A = diagonally_dominant(96, dominance=1.5, bandwidth=4, seed=5)
        b, _ = rhs_for_solution(A, seed=6)
        ref = MultisplittingSolver(4, mode="sequential").solve(A, b)
        with _make_executor(backend) as ex:
            res = MultisplittingSolver(4, mode="pipelined", backend=ex).solve(A, b)
        assert res.mode == "pipelined"
        assert res.converged and ref.converged
        assert res.iterations == ref.iterations
        np.testing.assert_array_equal(res.x, ref.x)

    def test_bad_dispatch_rejected(self):
        A, b, part, scheme = _problem()
        with pytest.raises(ValueError, match="dispatch"):
            multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"), dispatch="eager"
            )


class TestCrashSafety:
    """Satellite regression: a dead worker must not hang (or fail) close."""

    def test_process_close_survives_worker_crash(self):
        A, b, part, _ = _problem()
        ex = ProcessExecutor(max_workers=2)
        ex.attach(A, b, part.sets, get_solver("scipy"))
        victim = ex._workers[0]
        victim.kill()
        victim.join(timeout=10.0)
        t0 = time.monotonic()
        ex.close()  # must neither raise nor hang on the dead worker
        assert time.monotonic() - t0 < 60.0
        ex.close()  # and stays idempotent
        assert ex.nblocks == 0

    def test_socket_close_survives_worker_crash(self):
        A, b, part, _ = _problem()
        ex = SocketExecutor(workers=2)
        ex.attach(A, b, part.sets, get_solver("scipy"))
        victim = ex._procs[0]
        victim.kill()
        victim.join(timeout=10.0)
        t0 = time.monotonic()
        ex.close()
        assert time.monotonic() - t0 < 60.0
        ex.close()
        assert ex.nblocks == 0

    def test_external_workers_survive_close(self):
        """close() must only exit OWNED workers: an external fleet
        (addresses=) is disconnected, not killed, and serves the next
        driver."""
        import multiprocessing as mp

        from repro.runtime.sockets import _local_worker_entry

        ctx = mp.get_context()
        port_q = ctx.Queue()
        proc = ctx.Process(target=_local_worker_entry, args=(port_q,), daemon=True)
        proc.start()
        try:
            port, _pid = port_q.get(timeout=20.0)
            A, b, part, _ = _problem(n=96, L=2)
            for _ in range(2):  # two successive drivers against one fleet
                ex = SocketExecutor(addresses=[("127.0.0.1", port)])
                ex.attach(A, b, part.sets, get_solver("scipy"))
                pieces = ex.solve_round([np.zeros(b.shape)] * part.nprocs)
                assert len(pieces) == part.nprocs
                ex.close()
                assert proc.is_alive()
        finally:
            proc.kill()
            proc.join(timeout=10.0)

    def test_socket_worker_error_keeps_executor_usable(self):
        """A failing kernel surfaces as RuntimeError; the workers survive."""
        A, b, part, _ = _problem()
        bad = A.tolil()
        bad[0, :] = 0.0  # singular first block
        ex = SocketExecutor(workers=2)
        try:
            with pytest.raises(RuntimeError, match="worker"):
                ex.attach(bad.tocsr(), b, part.sets, get_solver("scipy"))
            A2, b2, part2, _ = _problem(seed=9)
            ex.attach(A2, b2, part2.sets, get_solver("scipy"))
            pieces = ex.solve_round([np.zeros(b2.shape)] * part2.nprocs)
            assert len(pieces) == part2.nprocs
        finally:
            ex.close()


#: Recovery settings used by the fault-conformance suite: a tight
#: heartbeat keeps corpse detection (and therefore the tests) fast.
_POLICY = FaultPolicy(heartbeat_interval=0.1)


class TestFaultConformance:
    """One fault schedule, four backends, identical observable outcomes.

    The :class:`ChaosExecutor` kills a worker mid-solve (really, for the
    process/socket backends; emulated at the contract boundary for the
    in-process ones), and every backend must (a) complete the run
    through its recovery path, (b) keep synchronous iterates
    bit-identical to the fault-free inline baseline, and (c) report the
    exact counters the injected schedule implies: one worker lost, and
    -- with 4 blocks round-robined over 2 workers -- exactly 2 blocks
    requeued, on every backend.
    """

    def _chaos(self, backend, injector, **chaos_kwargs):
        inner = _make_executor(backend)
        return inner, ChaosExecutor(inner, injector, **chaos_kwargs)

    def test_sync_bit_identical_under_worker_crash(self, backend):
        A, b, part, scheme = _problem()
        stopping = StoppingCriterion(tolerance=1e-300, max_iterations=8)
        ref = multisplitting_iterate(
            A, b, part, scheme, get_solver("scipy"), stopping=stopping
        )
        injector = FaultInjector(seed=3, crash_rounds=(2,), drop_rounds=(5,))
        inner, chaos = self._chaos(backend, injector)
        try:
            res = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"),
                stopping=stopping, executor=chaos, fault_policy=_POLICY,
            )
        finally:
            inner.close()
        assert res.history == ref.history
        np.testing.assert_array_equal(res.x, ref.x)
        assert res.backend == f"chaos:{backend}"
        fault = res.fault_stats
        assert fault.workers_lost == 1
        assert fault.blocks_requeued == 2  # 4 blocks over 2 workers
        assert fault.replies_dropped == 1
        crashes = [ev for ev in injector.log if ev.kind == "crash"]
        assert len(crashes) == 1 and crashes[0].round == 2

    def test_counters_replay_deterministically(self, backend):
        """Same seed => same fault schedule => same counters."""
        A, b, part, scheme = _problem()
        stopping = StoppingCriterion(tolerance=1e-300, max_iterations=8)

        def run(seed):
            injector = FaultInjector(
                seed=seed, crash_rounds=(3,), drop_rate=0.3, delay_rate=0.2,
                delay_seconds=0.001,
            )
            inner, chaos = self._chaos(backend, injector)
            try:
                res = multisplitting_iterate(
                    A, b, part, scheme, get_solver("scipy"),
                    stopping=stopping, executor=chaos, fault_policy=_POLICY,
                )
            finally:
                inner.close()
            f = res.fault_stats
            schedule = [(ev.kind, ev.round, ev.worker, ev.block)
                        for ev in injector.log]
            return (
                f.workers_lost, f.blocks_requeued, f.replies_dropped,
                f.delays_injected, schedule, res.x,
            )

        first = run(11)
        second = run(11)
        assert first[:5] == second[:5]
        np.testing.assert_array_equal(first[5], second[5])

    def test_respawn_under_worker_crash(self, backend):
        """respawn=True replaces the corpse instead of packing survivors."""
        A, b, part, scheme = _problem()
        stopping = StoppingCriterion(tolerance=1e-300, max_iterations=8)
        ref = multisplitting_iterate(
            A, b, part, scheme, get_solver("scipy"), stopping=stopping
        )
        policy = FaultPolicy(heartbeat_interval=0.1, respawn=True)
        inner, chaos = self._chaos(backend, FaultInjector(seed=7, crash_rounds=(3,)))
        try:
            res = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"),
                stopping=stopping, executor=chaos, fault_policy=policy,
            )
        finally:
            inner.close()
        np.testing.assert_array_equal(res.x, ref.x)
        assert res.fault_stats.workers_lost == 1
        assert res.fault_stats.respawns == 1

    def test_chaotic_async_true_residual_under_faults(self, backend):
        """The async-emulating driver's stop stays sound under faults:
        a reported convergence is verified against the true residual."""
        A, b, part, scheme = _problem()
        tol = 1e-8
        injector = FaultInjector(seed=5, crash_rounds=(4,), drop_rounds=(7,))
        inner, chaos = self._chaos(backend, injector)
        try:
            res = chaotic_iterate(
                A, b, part, scheme, get_solver("scipy"),
                stopping=StoppingCriterion(
                    tolerance=tol, consecutive=3, max_iterations=2_000
                ),
                executor=chaos, fault_policy=_POLICY, seed=1,
            )
        finally:
            inner.close()
        assert res.converged
        assert res.fault_stats.workers_lost == 1
        row_sums = np.abs(A).sum(axis=1)
        norm_A = float(np.max(np.asarray(row_sums)))
        assert res.residual <= tol * max(1.0, norm_A)

    def test_cache_counters_survive_recovery(self, backend):
        """Factor accounting stays coherent when a worker is lost: the
        adopters' refactors are honest misses, never silent work."""
        A, b, part, scheme = _problem()
        cache = FactorizationCache()
        stopping = StoppingCriterion(tolerance=1e-300, max_iterations=8)
        inner, chaos = self._chaos(backend, FaultInjector(seed=9, crash_rounds=(2,)))
        try:
            res = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"),
                stopping=stopping, cache=cache, executor=chaos,
                fault_policy=_POLICY,
            )
        finally:
            inner.close()
        stats = res.cache_stats
        assert stats is not None
        # Every block was factored at least once; the crash may add
        # refactors (worker-local caches die with their worker) but can
        # never lose factorizations.
        assert stats.misses >= part.nprocs or stats.hits > 0


class TestInvariantConformance:
    """The explorer's spec predicates over *real* executor state.

    ``repro.check.invariants`` is one statement of correctness checked
    in two places: after every step of every explored model schedule
    (``tests/test_check_models.py``), and here -- over the live owner
    maps the actual process/socket executors maintain through recovery.
    A protocol change that breaks the spec fails both suites.
    """

    @pytest.mark.parametrize("name", ["processes", "sockets"])
    def test_recovery_leaves_no_orphans_single_owners(self, name):
        from repro.check.invariants import no_orphans, single_owner

        A, b, part, _ = _problem()
        ex = _make_executor(name)
        try:
            ex.attach(A, b, part.sets, get_solver("scipy"), fault_policy=_POLICY)
            z = np.zeros(b.shape)
            ex.solve_round([z] * part.nprocs)
            assert ex.kill_worker(0)
            ex.solve_round([z] * part.nprocs)  # recovers mid-call
            alive = ex.alive_workers()
            # Post-recovery quiescence: every block is owned, owned
            # once, and owned by a live worker -- exactly what the
            # readoption model asserts at its own quiescent states.
            assert no_orphans(ex._owner, alive) is None
            claims = {l: [w] for l, w in ex._owner.items()}
            assert single_owner(claims) is None
            assert set(ex._owner) == set(range(part.nprocs))
        finally:
            ex.close()

    @pytest.mark.parametrize("name", ["processes", "sockets"])
    def test_respawn_recovery_also_satisfies_the_spec(self, name):
        from repro.check.invariants import no_orphans

        A, b, part, _ = _problem()
        ex = _make_executor(name)
        try:
            ex.attach(
                A, b, part.sets, get_solver("scipy"),
                fault_policy=FaultPolicy(heartbeat_interval=0.1, respawn=True),
            )
            z = np.zeros(b.shape)
            ex.solve_round([z] * part.nprocs)
            assert ex.kill_worker(1)
            ex.solve_round([z] * part.nprocs)
            assert no_orphans(ex._owner, ex.alive_workers()) is None
        finally:
            ex.close()
