"""One contract, four backends: the Executor conformance suite.

Every execution backend -- inline, threads, processes, and the TCP
``sockets`` backend -- must honour the same observable contract:

* ``attach`` / ``solve_blocks`` / ``detach`` / ``close`` lifecycle,
  with idempotent ``detach``/``close`` and a reusable executor after
  ``close``;
* **bit-identical** synchronous iterates vs :class:`InlineExecutor`
  (a block solve is a pure function of ``(block, z)``, results in
  request order);
* factor-once cache accounting wherever the counters physically live
  (the caller's cache for in-process backends, per-worker caches
  aggregated by ``run_cache_stats`` for process/socket backends);
* sticky placement affinity (a :class:`repro.schedule.Placement` pins
  block ``l`` to worker ``assignment[l]``) without changing iterates;
* crash-safe teardown: ``close`` completes, never raises, and stays
  idempotent even after a worker process died mid-binding.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import make_weighting, multisplitting_iterate, uniform_bands
from repro.core.stopping import StoppingCriterion
from repro.direct import get_solver
from repro.direct.cache import FactorizationCache
from repro.matrices import diagonally_dominant, rhs_for_solution
from repro.runtime import ProcessExecutor, SocketExecutor, get_executor
from repro.schedule import Placement, WorkerSlot

BACKENDS = ("inline", "threads", "processes", "sockets")

#: Constructor kwargs keeping worker pools small and spawns cheap.
_KWARGS = {
    "inline": {},
    "threads": {"max_workers": 2},
    "processes": {"max_workers": 2},
    "sockets": {"workers": 2},
}


def _make_executor(name):
    return get_executor(name, **_KWARGS[name])


def _problem(n=96, L=4, seed=5):
    A = diagonally_dominant(n, dominance=1.5, bandwidth=4, seed=seed)
    b, _ = rhs_for_solution(A, seed=seed + 1)
    part = uniform_bands(n, L).to_general()
    scheme = make_weighting("ownership", part)
    return A, b, part, scheme


def _identity_plan(n, L, sizes=None):
    return Placement(
        strategy="test",
        n=n,
        workers=tuple(WorkerSlot(name=f"w{i}") for i in range(L)),
        sizes=tuple(sizes) if sizes is not None else (n // L,) * L,
        assignment=tuple(range(L)),
    )


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


@pytest.fixture()
def executor(backend):
    ex = _make_executor(backend)
    yield ex
    ex.close()


class TestLifecycleConformance:
    def test_attach_solve_detach(self, executor):
        A, b, part, _ = _problem()
        executor.attach(A, b, part.sets, get_solver("scipy"))
        assert executor.nblocks == part.nprocs
        z = np.ones(b.shape)
        full = executor.solve_round([z] * part.nprocs)
        assert len(full) == part.nprocs
        some = executor.solve_blocks([(3, z), (1, z)])
        np.testing.assert_array_equal(some[0], full[3])
        np.testing.assert_array_equal(some[1], full[1])
        executor.detach()
        assert executor.nblocks == 0

    def test_detach_idempotent(self, executor):
        A, b, part, _ = _problem()
        executor.attach(A, b, part.sets, get_solver("scipy"))
        executor.detach()
        executor.detach()
        assert executor.nblocks == 0

    def test_solve_after_detach_raises(self, executor):
        A, b, part, _ = _problem()
        executor.attach(A, b, part.sets, get_solver("scipy"))
        executor.detach()
        with pytest.raises(RuntimeError):
            executor.solve_blocks([(0, np.zeros(b.shape))])

    def test_close_idempotent_and_reusable(self, backend):
        """close() twice is a no-op; attach after close rebuilds workers."""
        A, b, part, scheme = _problem()
        ex = _make_executor(backend)
        try:
            r1 = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"), executor=ex
            )
            ex.close()
            ex.close()
            r2 = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"), executor=ex
            )
            assert r1.converged and r2.converged
            np.testing.assert_array_equal(r1.x, r2.x)
        finally:
            ex.close()

    def test_placement_length_mismatch_rejected(self, executor):
        A, b, part, _ = _problem()
        bad = _identity_plan(96, 2, sizes=(48, 48))
        with pytest.raises(ValueError, match="placement"):
            executor.attach(A, b, part.sets, get_solver("scipy"), placement=bad)


class TestDeterminismConformance:
    def test_bit_identical_vs_inline(self, backend):
        A, b, part, scheme = _problem()
        stopping = StoppingCriterion(tolerance=1e-300, max_iterations=8)
        with _make_executor("inline") as ref_ex, _make_executor(backend) as ex:
            ref = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"),
                stopping=stopping, executor=ref_ex,
            )
            res = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"),
                stopping=stopping, executor=ex,
            )
        assert res.backend == backend
        assert res.history == ref.history
        np.testing.assert_array_equal(res.x, ref.x)

    def test_placement_does_not_change_iterates(self, executor, backend):
        """Pinning blocks to workers moves solves, never values."""
        A, b, part, scheme = _problem()
        # Two worker slots, four blocks: (0, 1, 0, 1) round-robin pinning
        # matches every backend's two-worker pool from _KWARGS.
        plan = Placement(
            strategy="test",
            n=96,
            workers=(WorkerSlot(name="w0"), WorkerSlot(name="w1")),
            sizes=(24, 24, 24, 24),
            assignment=(0, 1, 0, 1),
        )
        stopping = StoppingCriterion(tolerance=1e-300, max_iterations=6)
        ref = multisplitting_iterate(
            A, b, part, scheme, get_solver("scipy"), stopping=stopping
        )
        res = multisplitting_iterate(
            A, b, part, scheme, get_solver("scipy"),
            stopping=stopping, executor=executor, placement=plan,
        )
        assert res.placement == plan.summary()
        np.testing.assert_array_equal(res.x, ref.x)
        assert set(res.block_seconds) == set(range(4))


class TestCacheConformance:
    def test_factor_once_accounting(self, backend):
        """Fresh workers + fresh cache: misses == blocks, one hit per
        block per iteration -- wherever the counters physically live."""
        A, b, part, scheme = _problem()
        cache = FactorizationCache()
        with _make_executor(backend) as ex:
            res = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"), cache=cache, executor=ex
            )
        stats = res.cache_stats
        assert stats is not None
        assert stats.misses == part.nprocs
        assert stats.hits == res.iterations * part.nprocs

    def test_reattach_hits_worker_caches(self, backend):
        """Re-attaching the same matrix skips every factorization."""
        A, b, part, scheme = _problem()
        cache = FactorizationCache()
        with _make_executor(backend) as ex:
            first = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"), cache=cache, executor=ex
            )
            second = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"), cache=cache, executor=ex
            )
        assert first.cache_stats.misses == part.nprocs
        assert second.cache_stats.misses == 0


class TestCrashSafety:
    """Satellite regression: a dead worker must not hang (or fail) close."""

    def test_process_close_survives_worker_crash(self):
        A, b, part, _ = _problem()
        ex = ProcessExecutor(max_workers=2)
        ex.attach(A, b, part.sets, get_solver("scipy"))
        victim = ex._workers[0]
        victim.kill()
        victim.join(timeout=10.0)
        t0 = time.monotonic()
        ex.close()  # must neither raise nor hang on the dead worker
        assert time.monotonic() - t0 < 60.0
        ex.close()  # and stays idempotent
        assert ex.nblocks == 0

    def test_socket_close_survives_worker_crash(self):
        A, b, part, _ = _problem()
        ex = SocketExecutor(workers=2)
        ex.attach(A, b, part.sets, get_solver("scipy"))
        victim = ex._procs[0]
        victim.kill()
        victim.join(timeout=10.0)
        t0 = time.monotonic()
        ex.close()
        assert time.monotonic() - t0 < 60.0
        ex.close()
        assert ex.nblocks == 0

    def test_external_workers_survive_close(self):
        """close() must only exit OWNED workers: an external fleet
        (addresses=) is disconnected, not killed, and serves the next
        driver."""
        import multiprocessing as mp

        from repro.runtime.sockets import _local_worker_entry

        ctx = mp.get_context()
        port_q = ctx.Queue()
        proc = ctx.Process(target=_local_worker_entry, args=(port_q,), daemon=True)
        proc.start()
        try:
            port = port_q.get(timeout=20.0)
            A, b, part, _ = _problem(n=96, L=2)
            for _ in range(2):  # two successive drivers against one fleet
                ex = SocketExecutor(addresses=[("127.0.0.1", port)])
                ex.attach(A, b, part.sets, get_solver("scipy"))
                pieces = ex.solve_round([np.zeros(b.shape)] * part.nprocs)
                assert len(pieces) == part.nprocs
                ex.close()
                assert proc.is_alive()
        finally:
            proc.kill()
            proc.join(timeout=10.0)

    def test_socket_worker_error_keeps_executor_usable(self):
        """A failing kernel surfaces as RuntimeError; the workers survive."""
        A, b, part, _ = _problem()
        bad = A.tolil()
        bad[0, :] = 0.0  # singular first block
        ex = SocketExecutor(workers=2)
        try:
            with pytest.raises(RuntimeError, match="worker"):
                ex.attach(bad.tocsr(), b, part.sets, get_solver("scipy"))
            A2, b2, part2, _ = _problem(seed=9)
            ex.attach(A2, b2, part2.sets, get_solver("scipy"))
            pieces = ex.solve_round([np.zeros(b2.shape)] * part2.nprocs)
            assert len(pieces) == part2.nprocs
        finally:
            ex.close()
