"""The protocol models under their checker (repro.check.models).

Two halves, mirroring the REGISTRY split:

* every *current-protocol* model explores clean under a bounded budget
  (the CI ``modelcheck`` job runs the deep campaign; this is the fast
  tripwire for model edits);
* every *known-bug fixture* still reproduces its violation -- a fixture
  that stops failing means the checker lost its teeth, so these assert
  the violation's kind and invariant by name.

Plus unit tests of the shared invariant predicates themselves: the same
functions run inside the explored models and over the real executors in
``tests/test_runtime_conformance.py``.
"""

from __future__ import annotations

import pytest

from repro.check import explore, explore_exhaustive, explore_random
from repro.check.invariants import (
    no_double_fold,
    no_orphans,
    no_torn_value,
    single_owner,
    versions_monotone,
    window_within_pool,
)
from repro.check.models import (
    REGISTRY,
    ElasticModel,
    PipelineModel,
    PipeReplyModel,
    ReadoptionModel,
    RecoveryModel,
    SeqlockModel,
    SharedQueueModel,
)

_CLEAN = sorted(n for n, (_, bad, _) in REGISTRY.items() if not bad)
_FIXTURES = sorted(n for n, (_, bad, _) in REGISTRY.items() if bad)


class TestRegistryShape:
    def test_every_entry_is_well_formed(self):
        for name, (factory, expect, budget) in REGISTRY.items():
            model = factory()
            assert model.threads(), name
            assert model.invariants() or isinstance(
                model, SharedQueueModel
            ), f"{name}: no invariants and not the deadlock fixture"
            assert isinstance(expect, bool)
            assert set(budget) <= {"max_runs", "walks"}

    def test_fresh_state_per_factory_call(self):
        for name, (factory, _, _) in REGISTRY.items():
            assert factory() is not factory(), name


class TestCurrentProtocolsClean:
    """Bounded sweep of each shipped protocol's model: no violations."""

    @pytest.mark.parametrize("name", _CLEAN)
    def test_explores_clean(self, name):
        factory, _, _ = REGISTRY[name]
        res = explore(factory, max_runs=1_500, walks=150, seed=1)
        assert res.ok, f"{name}:\n{res.violation}"


class TestFixturesStillBite:
    """Each knob that disables a real guard must reproduce its bug."""

    def test_shared_queue_deadlocks(self):
        # The PR 4 bug: SIGKILL inside the reply queue's critical
        # section leaks the lock.  Bounded DFS misses it (the deadlock
        # needs the killer to strike deep in one branch); the seeded
        # walks land on it in a handful of tries -- the reason explore()
        # runs both strategies.
        res = explore_random(SharedQueueModel, seed=0, walks=100)
        assert res.violation is not None
        assert res.violation.kind == "deadlock"
        assert "driver" in res.violation.detail

    def test_unguarded_requeue_double_folds(self):
        # Found by the explorer while this model was being written: a
        # worker killed after piping its reply but before the driver
        # drained it gets its block requeued, and both generations fold.
        # processes.py's "a requeued block may answer twice" guard is
        # what the requeue_guard knob models.
        res = explore_random(
            lambda: PipeReplyModel(requeue_guard=False), seed=0, walks=400
        )
        assert res.violation is not None
        assert res.violation.kind == "invariant"
        assert res.violation.detail == "no-double-fold"

    def test_unfiltered_epoch_folds_stale_frame(self):
        # Without the filter, the pre-seeded frame from the aborted
        # binding reaches the fold on the very first drain -- caught by
        # the epoch-tracking invariant (the labels alone can't see it:
        # the requeue guard dedups the block number either way).
        res = explore_exhaustive(
            lambda: PipeReplyModel(filter_epochs=False), max_runs=200
        )
        assert res.violation is not None
        assert res.violation.kind == "invariant"
        assert res.violation.detail == "current-epoch-folds-only"

    def test_unfiltered_late_reply_folds_dead_generation(self):
        res = explore_exhaustive(
            lambda: RecoveryModel(late_reply_guard=False), max_runs=100
        )
        assert res.violation is not None
        assert res.violation.kind == "invariant"
        assert res.violation.detail == "fresh-generation-folds"

    def test_stale_assignment_orphans_a_block(self):
        # Recovery consulting the attach-time assignment instead of the
        # live owner map loses blocks adopted in an earlier recovery.
        res = explore_random(
            lambda: ReadoptionModel(track_adoptions=False), seed=0, walks=100
        )
        assert res.violation is not None
        assert res.violation.kind == "invariant"
        assert res.violation.detail == "no-orphans-at-quiescence"

    def test_seqlock_without_recheck_tears(self):
        res = explore_random(
            lambda: SeqlockModel(recheck=False), seed=0, walks=100
        )
        assert res.violation is not None
        assert res.violation.kind == "invariant"
        assert res.violation.detail == "no-torn-read"

    def test_mid_round_migration_violates_single_owner(self):
        # Elastic migration applied the moment a membership change is
        # noticed -- instead of at the quiescent round boundary -- hands
        # a block to the adopter while the old owner's solve for the
        # same round is still in flight.
        res = explore_exhaustive(
            lambda: ElasticModel(boundary_guard=False), max_runs=2_000
        )
        assert res.violation is not None
        assert res.violation.kind == "invariant"
        assert res.violation.detail == "single-owner"

    def test_mid_round_migration_also_corrupts_the_folds(self):
        # The ownership overlap is not just bookkeeping: with the
        # single-owner witness removed, the explorer still finds the
        # data corruption itself -- a previous round's piece spliced
        # into a later round (and, on other schedules, a double fold).
        class _FoldInvariantsOnly(ElasticModel):
            def invariants(self):
                return [
                    (name, fn)
                    for name, fn in super().invariants()
                    if name != "single-owner"
                ]

        res = explore_random(
            lambda: _FoldInvariantsOnly(boundary_guard=False),
            seed=0, walks=300,
        )
        assert res.violation is not None
        assert res.violation.kind == "invariant"
        assert res.violation.detail in (
            "fresh-round-folds", "no-double-fold-per-round",
        )

    def test_window_eq_depth_tears_a_fold(self):
        # This one fails on the very first (all-zeros) schedule: with
        # window == depth the steady state itself recycles a buffer a
        # fold is still reading.  No race required -- which is why the
        # construction-time window < depth assert is safe to enforce.
        res = explore_exhaustive(
            lambda: PipelineModel(window=4, depth=4), max_runs=10
        )
        assert res.violation is not None
        assert res.violation.kind == "invariant"
        assert res.violation.detail == "reads-see-intact-buffers"


class TestInvariantPredicates:
    """The shared spec functions, exercised as plain functions."""

    def test_single_owner(self):
        assert single_owner({0: [1], 1: [2]}) is None
        msg = single_owner({0: [1, 2]})
        assert msg is not None and "block 0" in msg
        assert single_owner({3: []}) is not None  # unowned is also wrong

    def test_no_orphans(self):
        assert no_orphans({0: 1, 1: 1}, live=[1]) is None
        msg = no_orphans({0: 0, 1: 1}, live=[1])
        assert msg is not None and "orphaned" in msg

    def test_no_double_fold(self):
        assert no_double_fold([0, 1, 2]) is None
        msg = no_double_fold([0, 1, 0])
        assert msg is not None and "folded twice" in msg

    def test_no_torn_value(self):
        pub = [(0, 0), (1, 1)]
        assert no_torn_value((1, 1), pub) is None
        msg = no_torn_value((0, 1), pub)
        assert msg is not None and "torn read" in msg

    def test_versions_monotone(self):
        assert versions_monotone([1, 1, 2, 4]) is None
        msg = versions_monotone([2, 1])
        assert msg is not None and "backwards" in msg

    def test_window_within_pool(self):
        assert window_within_pool(3, 4) is None
        for w, d in [(4, 4), (5, 4)]:
            msg = window_within_pool(w, d)
            assert msg is not None and "strictly below" in msg

    def test_real_pipeline_constants_satisfy_the_spec(self):
        # The same check repro.core.sequential enforces at construction.
        from repro.core.sequential import _PIPELINE_WINDOW
        from repro.runtime.wire import DEFAULT_POOL_DEPTH

        assert window_within_pool(_PIPELINE_WINDOW, DEFAULT_POOL_DEPTH) is None
