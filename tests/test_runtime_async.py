"""Seqlock vectors and the genuinely-asynchronous threaded driver."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import (
    check_theorem1,
    make_weighting,
    multisplitting_iterate,
    uniform_bands,
)
from repro.core.stopping import StoppingCriterion
from repro.direct import get_solver
from repro.direct.cache import FactorizationCache
from repro.matrices import diagonally_dominant, rhs_for_solution
from repro.runtime import VersionedVector, async_iterate


class TestVersionedVector:
    def test_initial_read(self):
        v = VersionedVector(np.arange(4.0))
        value, version = v.read()
        np.testing.assert_array_equal(value, [0.0, 1.0, 2.0, 3.0])
        assert version == 0

    def test_write_bumps_version(self):
        v = VersionedVector(np.zeros(3))
        assert v.write(np.ones(3)) == 1
        assert v.write(2 * np.ones(3)) == 2
        value, version = v.read()
        assert version == 2
        np.testing.assert_array_equal(value, 2 * np.ones(3))

    def test_shape_checked(self):
        v = VersionedVector(np.zeros(3))
        with pytest.raises(ValueError, match="shape"):
            v.write(np.zeros(4))

    def test_no_torn_reads_under_contention(self):
        """Readers only ever observe complete published values.

        The writer publishes constant-valued vectors (value == sweep
        index); a torn read would show two different constants in one
        snapshot.  Large buffers maximise the window for the writer to
        land mid-copy.
        """
        n = 50_000
        v = VersionedVector(np.zeros(n))
        stop = threading.Event()
        torn: list[np.ndarray] = []

        def writer() -> None:
            i = 0.0
            while not stop.is_set():
                i += 1.0
                v.write(np.full(n, i))

        def reader() -> None:
            last_version = -1
            for _ in range(300):
                value, version = v.read()
                if value.min() != value.max():
                    torn.append(value)
                # versions never go backwards
                assert version >= last_version
                last_version = version

        w = threading.Thread(target=writer)
        readers = [threading.Thread(target=reader) for _ in range(3)]
        w.start()
        for r in readers:
            r.start()
        for r in readers:
            r.join()
        stop.set()
        w.join()
        assert not torn, f"observed {len(torn)} torn reads"

    def test_backoff_parks_reader_during_stuck_write(self):
        """A writer descheduled mid-publication (version held odd) must
        not let readers hot-spin: past the bounded spin they park in
        50us sleeps, then complete normally once the write finishes."""
        import time

        v = VersionedVector(np.zeros(4))
        v._version = 1  # writer wedged between its two increments
        out = {}

        def reader():
            out["value"], out["version"] = v.read()

        t = threading.Thread(target=reader, daemon=True)
        t.start()
        time.sleep(0.05)  # far past the spin limit
        assert t.is_alive()  # parked, not returned with a torn value
        v._buf[...] = 7.0
        v._version = 2  # publication completes
        t.join(timeout=5.0)
        assert not t.is_alive(), "reader failed to wake after the write"
        np.testing.assert_array_equal(out["value"], np.full(4, 7.0))
        assert out["version"] == 1

    def test_hammer_matches_the_model_invariants(self):
        """The real seqlock under real threads, judged by the *same*
        predicates the interleaving explorer checks its model with
        (repro.check.models.seqlock): every completed read is some
        atomically-published snapshot, and each reader's version
        observations are monotone."""
        from repro.check.invariants import no_torn_value, versions_monotone

        n, sweeps = 64, 400
        v = VersionedVector(np.zeros(n))
        published = [tuple(np.zeros(n))]
        reads: dict[int, list] = {0: [], 1: [], 2: []}

        def writer():
            for i in range(1, sweeps + 1):
                value = np.full(n, float(i))
                # Log first: the set of "ever published" values must be
                # a superset of what any reader can observe.
                published.append(tuple(value))
                v.write(value)

        def reader(me):
            while True:
                value, version = v.read()
                reads[me].append((tuple(value), version))
                if version >= sweeps:
                    return

        w = threading.Thread(target=writer)
        rs = [threading.Thread(target=reader, args=(i,)) for i in reads]
        for t in rs:
            t.start()
        w.start()
        w.join()
        for t in rs:
            t.join(timeout=30.0)
            assert not t.is_alive()
        for me, log in reads.items():
            assert log, f"reader {me} never completed a read"
            assert versions_monotone([ver for _, ver in log]) is None
            for value, _ in log:
                assert no_torn_value(value, published) is None


class TestAsyncIterate:
    def _problem(self, n=120, L=3, seed=3):
        A = diagonally_dominant(n, dominance=1.5, bandwidth=4, seed=seed)
        b, x_true = rhs_for_solution(A, seed=seed + 1)
        part = uniform_bands(n, L).to_general()
        scheme = make_weighting("ownership", part)
        return A, b, x_true, part, scheme

    def test_converges_to_reference_solution(self):
        A, b, x_true, part, scheme = self._problem()
        # pre-flight: Theorem 1's asynchronous condition holds here
        assert check_theorem1(A, part).asynchronous_ok
        cache = FactorizationCache()
        result = async_iterate(
            A, b, part, scheme, get_solver("scipy"), cache=cache
        )
        assert result.converged
        assert result.backend == "threads"
        assert result.iterations >= 1
        # sound stop: the true residual honours the scaled tolerance
        norm_A = float(np.max(np.abs(A).sum(axis=1)))
        assert result.residual <= 1e-8 * max(1.0, norm_A)
        # same fixed point as the synchronous reference, within tolerance
        ref = multisplitting_iterate(A, b, part, scheme, get_solver("scipy"))
        assert np.max(np.abs(result.x - ref.x)) < 1e-5
        assert np.max(np.abs(result.x - x_true)) < 1e-5
        # factor-once during setup
        assert cache.stats.misses == part.nprocs

    def test_general_partitions_converge(self):
        """The free-running driver handles Remark-2 decompositions: each
        block thread publishes over its arbitrary index set."""
        from repro.core.partition import interleaved_partition, permuted_bands

        A, b, x_true, _, _ = self._problem()
        n = A.shape[0]
        parts = [
            interleaved_partition(n, 3, chunk=5),
            permuted_bands(np.random.default_rng(4).permutation(n), 3, overlap=3),
        ]
        for part in parts:
            scheme = make_weighting("ownership", part)
            result = async_iterate(A, b, part, scheme, get_solver("scipy"))
            assert result.converged
            norm_A = float(np.max(np.abs(A).sum(axis=1)))
            assert result.residual <= 1e-8 * max(1.0, norm_A)
            assert np.max(np.abs(result.x - x_true)) < 1e-5

    def test_repeated_runs_agree_within_tolerance(self):
        """Scheduling differs run to run; the solution must not."""
        A, b, _, part, scheme = self._problem(seed=8)
        first = async_iterate(A, b, part, scheme, get_solver("scipy"))
        second = async_iterate(A, b, part, scheme, get_solver("scipy"))
        assert first.converged and second.converged
        assert np.max(np.abs(first.x - second.x)) < 1e-5

    def test_warm_start(self):
        A, b, _, part, scheme = self._problem()
        ref = multisplitting_iterate(A, b, part, scheme, get_solver("scipy"))
        warm = async_iterate(
            A, b, part, scheme, get_solver("scipy"), x0=ref.x
        )
        assert warm.converged
        assert np.max(np.abs(warm.x - ref.x)) < 1e-6

    def test_iteration_budget_respected(self):
        A, b, _, part, scheme = self._problem()
        stopping = StoppingCriterion(tolerance=1e-300, max_iterations=5)
        result = async_iterate(
            A, b, part, scheme, get_solver("scipy"), stopping=stopping
        )
        assert not result.converged
        assert result.iterations <= 5

    def test_unreachable_tolerance_terminates(self):
        """Bitwise fixed point above the tolerance: quiesce, don't hang."""
        A, b, _, part, scheme = self._problem()
        stopping = StoppingCriterion(tolerance=1e-300)
        result = async_iterate(
            A, b, part, scheme, get_solver("scipy"),
            stopping=stopping, quiescence_timeout=0.2,
        )
        assert not result.converged
        # it still did real work and landed at the fixed point
        assert result.iterations >= 1
        assert result.residual < 1e-6

    def test_rejects_batched_rhs(self):
        A, b, _, part, scheme = self._problem()
        B = np.stack([b, b], axis=1)
        with pytest.raises(ValueError, match="one right-hand side"):
            async_iterate(A, B, part, scheme, get_solver("scipy"))

    def test_rejects_bad_x0(self):
        A, b, _, part, scheme = self._problem()
        with pytest.raises(ValueError, match="x0"):
            async_iterate(
                A, b, part, scheme, get_solver("scipy"), x0=np.zeros(7)
            )
