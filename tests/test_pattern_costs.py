"""Property tests of the pattern-aware message cost model (repro.schedule.pattern).

Three invariants pin the model to the exchanges the drivers actually
perform:

* **band specialisation** -- on a uniform band partition of a
  nearest-neighbour matrix, the priced per-block terms reproduce the
  pattern-blind band formula (:func:`repro.schedule.band_comm_costs`)
  *exactly*: the legacy formula falls out as a special case rather than
  living on as a second source of truth;
* **pattern consistency** -- the message matrix has a non-zero entry
  exactly on the edges of :func:`repro.core.distributed
  .communication_pattern`, and each entry is byte-exact with what the
  simulator charges per exchange (one ``|J_l|``-row piece, ``k``
  columns);
* **relabeling invariance** -- renaming the blocks permutes rows and
  columns of the message matrix but cannot change the total priced
  traffic.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributed import communication_pattern
from repro.core.partition import (
    GeneralPartition,
    interleaved_partition,
    permuted_bands,
    uniform_bands,
)
from repro.core.weighting import make_weighting
from repro.grid.comm import vector_bytes
from repro.grid.topology import cluster1, cluster3
from repro.matrices import diagonally_dominant
from repro.schedule import band_comm_costs, message_bytes_matrix, pattern_comm_costs


def _banded_matrix(n: int, bandwidth: int) -> sp.csr_matrix:
    """Diagonally dominant with *every* in-band entry non-zero.

    A full band guarantees each uniform band couples to both adjacent
    bands (and, with ``bandwidth`` below the band size, to nothing
    further) -- the exact regime the band formula was written for.
    """
    diags = [np.full(n, 4.0 * bandwidth)]
    offsets = [0]
    for off in range(1, bandwidth + 1):
        diags += [np.full(n - off, -1.0), np.full(n - off, -1.0)]
        offsets += [off, -off]
    return sp.diags(diags, offsets=offsets, format="csr")


class TestBandSpecialisation:
    @settings(max_examples=40, deadline=None)
    @given(
        L=st.integers(2, 6),
        rows=st.integers(8, 24),
        bandwidth=st.integers(1, 3),
        k=st.integers(1, 3),
        two_sites=st.booleans(),
    )
    def test_band_partition_reproduces_band_formula_exactly(
        self, L, rows, bandwidth, k, two_sites
    ):
        n = L * rows  # uniform bands of exactly n/L rows, the formula's piece
        A = _banded_matrix(n, bandwidth)
        part = uniform_bands(n, L).to_general()
        scheme = make_weighting("ownership", part)
        cluster = cluster3(max(L, 2)) if two_sites else cluster1(L)
        hosts = cluster.hosts[:L]
        pattern = pattern_comm_costs(A, part, scheme, hosts, cluster, k=k)
        band = band_comm_costs(hosts, cluster, n, k)
        assert [float(x) for x in pattern] == [float(x) for x in band]


def _draw_partition(kind: str, n: int, L: int, seed: int) -> GeneralPartition:
    if kind == "interleaved":
        return interleaved_partition(n, L, chunk=max(1, n // (4 * L)))
    if kind == "permuted":
        perm = np.random.default_rng(seed).permutation(n)
        return permuted_bands(perm, L, overlap=2)
    return uniform_bands(n, L, overlap=3).to_general()


class TestPatternConsistency:
    @settings(max_examples=40, deadline=None)
    @given(
        kind=st.sampled_from(["interleaved", "permuted", "overlap-bands"]),
        weighting=st.sampled_from(["ownership", "averaging", "schwarz"]),
        L=st.integers(2, 5),
        rows=st.integers(6, 16),
        k=st.integers(1, 2),
        seed=st.integers(0, 10),
    )
    def test_matrix_matches_communication_pattern(
        self, kind, weighting, L, rows, k, seed
    ):
        n = L * rows
        A = diagonally_dominant(n, dominance=1.5, bandwidth=3, seed=seed)
        part = _draw_partition(kind, n, L, seed)
        scheme = make_weighting(weighting, part)
        bytes_mat = message_bytes_matrix(A, part, scheme, k=k)
        pattern = communication_pattern(part, scheme, A=A)
        for l in range(L):
            expected = float(vector_bytes(int(part.sets[l].size), k))
            for m in range(L):
                if m in pattern.dependents[l]:
                    assert bytes_mat[l, m] == expected
                else:
                    assert bytes_mat[l, m] == 0.0
        # The edge set is exactly the transpose relation of deps.
        for l in range(L):
            assert pattern.dependents[l] == sorted(
                m for m in range(L) if l in pattern.deps[m]
            )


class TestStoredZeroPruning:
    def test_stored_zeros_do_not_create_dependencies(self):
        """An explicitly stored zero crossing a block boundary must not
        produce a priced message: the built systems prune it
        (``eliminate_zeros``), so the a-priori pattern path must too."""
        from repro.core.local import build_local_systems
        from repro.direct import get_solver

        n, L = 12, 3
        A = sp.identity(n, format="csr") * 4.0
        A = A.tolil()
        A[0, 8] = 1.0  # crosses from block 0 into block 2...
        A = A.tocsr()
        lo, hi = A.indptr[0], A.indptr[1]  # ...but is explicitly zeroed
        A.data[lo:hi][A.indices[lo:hi] == 8] = 0.0  # in place (row 0 only)
        part = uniform_bands(n, L).to_general()
        scheme = make_weighting("ownership", part)
        from_matrix = communication_pattern(part, scheme, A=A)
        systems = build_local_systems(A, np.ones(n), part.sets, get_solver("scipy"))
        from_systems = communication_pattern(part, scheme, systems)
        assert from_matrix.deps == from_systems.deps == [[], [], []]
        assert part.dependencies(A) == [[], [], []]
        assert message_bytes_matrix(A, part, scheme).sum() == 0.0


class TestRelabelingInvariance:
    @settings(max_examples=40, deadline=None)
    @given(
        kind=st.sampled_from(["interleaved", "permuted", "overlap-bands"]),
        weighting=st.sampled_from(["ownership", "averaging", "schwarz"]),
        L=st.integers(2, 5),
        rows=st.integers(6, 16),
        seed=st.integers(0, 10),
        relabel_seed=st.integers(0, 10),
    )
    def test_total_priced_bytes_invariant_under_relabeling(
        self, kind, weighting, L, rows, seed, relabel_seed
    ):
        n = L * rows
        A = diagonally_dominant(n, dominance=1.5, bandwidth=3, seed=seed)
        part = _draw_partition(kind, n, L, seed)
        sigma = np.random.default_rng(relabel_seed).permutation(L)
        relabeled = GeneralPartition(
            n=n,
            sets=tuple(part.sets[s] for s in sigma),
            core=tuple(part.core[s] for s in sigma),
        )
        original = message_bytes_matrix(A, part, make_weighting(weighting, part))
        renamed = message_bytes_matrix(
            A, relabeled, make_weighting(weighting, relabeled)
        )
        assert renamed.sum() == original.sum()
        # Stronger: the renamed matrix is the sigma-permuted original.
        np.testing.assert_array_equal(renamed, original[np.ix_(sigma, sigma)])
