"""End-to-end observability smoke: traced socket solve -> valid trace.

CI's observe-smoke job runs this under a hard timeout.  It drives a
4-worker :class:`SocketExecutor` solve with tracing on, then checks the
whole export chain the observability stack promises:

* every worker lane (``worker-0`` .. ``worker-3``) shipped compute,
  wire (with byte counts), and barrier-wait spans back to the driver,
  merged onto one clock;
* the Chrome ``trace_event`` export passes its schema gate, both as the
  in-memory object and reloaded from disk;
* the per-round terminal timeline renders;
* the metrics registry folds the run + spans into a Prometheus scrape.

Exit status 0 on success; any broken invariant raises.

Usage::

    PYTHONPATH=src python scripts/observe_smoke.py [trace.json]
"""

from __future__ import annotations

import json
import sys
import tempfile

from repro.core import make_weighting, multisplitting_iterate, uniform_bands
from repro.core.stopping import StoppingCriterion
from repro.direct import FactorizationCache, get_solver
from repro.matrices import diagonally_dominant, rhs_for_solution
from repro.observe import (
    MetricsRegistry,
    Tracer,
    round_timeline,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.runtime import get_executor

WORKERS = 4
BLOCKS = 4
ROUNDS = 12
N = 160


def main(argv: list[str]) -> int:
    path = argv[1] if len(argv) > 1 else tempfile.mktemp(suffix=".json")

    A = diagonally_dominant(N, dominance=1.5, bandwidth=4, seed=5)
    b, _ = rhs_for_solution(A, seed=6)
    part = uniform_bands(N, BLOCKS).to_general()
    scheme = make_weighting("ownership", part)
    stopping = StoppingCriterion(tolerance=1e-300, max_iterations=ROUNDS)

    tracer = Tracer()
    with get_executor("sockets", workers=WORKERS) as ex:
        result = multisplitting_iterate(
            A, b, part, scheme, get_solver("scipy"),
            stopping=stopping, cache=FactorizationCache(),
            executor=ex, trace=tracer,
        )
    assert result.iterations == ROUNDS, result.iterations

    spans = tracer.spans()
    lanes = {s.lane for s in spans}
    expected = {f"worker-{w}" for w in range(WORKERS)} | {"driver"}
    missing = expected - lanes
    assert not missing, f"lanes missing from the merged timeline: {missing}"

    by_lane: dict[str, set] = {}
    for s in spans:
        by_lane.setdefault(s.lane, set()).add(s.name)
    for w in range(WORKERS):
        names = by_lane[f"worker-{w}"]
        for required in ("solve", "wire.send", "wire.recv", "barrier.wait"):
            assert required in names, f"worker-{w} shipped no {required} span"
        assert "factor" in names or "cache.miss" in names, (
            f"worker-{w} recorded no factorization work"
        )
    wire_bytes = sum(
        s.args.get("bytes", 0)
        for s in spans
        if s.name in ("wire.send", "wire.recv")
    )
    assert wire_bytes > 0, "wire spans carry no byte counts"

    obj = write_chrome_trace(spans, path)
    validate_chrome_trace(obj)
    with open(path) as fh:
        validate_chrome_trace(json.load(fh))

    print(round_timeline(spans))
    print()

    registry = MetricsRegistry()
    registry.ingest_result(result)
    registry.ingest_spans(spans)
    scrape = registry.render()
    for needle in (
        "repro_solve_runs_total 1",
        "repro_wire_vector_bytes_sent_total",
        'repro_spans_total{name="solve"}',
    ):
        assert needle in scrape, f"metrics scrape missing {needle!r}"
    print(scrape)

    print(
        f"observe smoke OK: {len(spans)} spans over {sorted(lanes)} "
        f"({wire_bytes} wire bytes) -> {path}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
