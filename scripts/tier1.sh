#!/usr/bin/env sh
# Tier-1 gate: runs the ROADMAP verify command from any working directory.
#
#   scripts/tier1.sh            # the full tier-1 suite
#   scripts/tier1.sh tests/test_direct_cache.py   # extra args forwarded
#
# Benchmarks are run separately (they are aggregate table replays):
#   PYTHONPATH=src python -m pytest benchmarks/bench_factor_cache.py -q
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" exec python -m pytest -x -q "$@"
