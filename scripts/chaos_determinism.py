"""Emit the fault counters of one seeded chaos run, as JSON.

CI's chaos job runs this twice and diffs the output: the fault schedule
is seeded and the recovery bookkeeping deterministic, so the two reports
must be byte-identical -- `same seed => same fault schedule => same
counters`, over all four execution backends.

Usage::

    PYTHONPATH=src python scripts/chaos_determinism.py
"""

from __future__ import annotations

import json

import numpy as np

from repro.core import make_weighting, multisplitting_iterate, uniform_bands
from repro.core.stopping import StoppingCriterion
from repro.direct import get_solver
from repro.matrices import diagonally_dominant, rhs_for_solution
from repro.runtime import ChaosExecutor, FaultInjector, FaultPolicy, get_executor

BACKEND_KWARGS = {
    "inline": {},
    "threads": {"max_workers": 2},
    "processes": {"max_workers": 2},
    "sockets": {"workers": 2},
}


def main() -> int:
    A = diagonally_dominant(96, dominance=1.5, bandwidth=4, seed=5)
    b, _ = rhs_for_solution(A, seed=6)
    part = uniform_bands(96, 4).to_general()
    scheme = make_weighting("ownership", part)
    report = {}
    for backend, kwargs in BACKEND_KWARGS.items():
        inner = get_executor(backend, **kwargs)
        try:
            injector = FaultInjector(seed=42, crash_rounds=(2,), drop_rate=0.25)
            chaos = ChaosExecutor(inner, injector)
            res = multisplitting_iterate(
                A, b, part, scheme, get_solver("scipy"),
                stopping=StoppingCriterion(tolerance=1e-300, max_iterations=8),
                executor=chaos,
                fault_policy=FaultPolicy(heartbeat_interval=0.1),
            )
        finally:
            inner.close()
        f = res.fault_stats
        report[backend] = {
            "workers_lost": f.workers_lost,
            "blocks_requeued": f.blocks_requeued,
            "replies_dropped": f.replies_dropped,
            "schedule": [
                [ev.kind, ev.round, ev.worker, ev.block] for ev in injector.log
            ],
            "x_digest": repr(float(np.abs(res.x).sum())),
        }
    print(json.dumps(report, sort_keys=True, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
